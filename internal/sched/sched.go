// Package sched is the dynamic-scheduler layer above the static
// internal/schedule tables: fabric architectures that recompute their
// connection pattern every epoch from observed demand, under one
// pluggable Scheduler interface the core engine drives at each epoch
// boundary.
//
// Four families are provided:
//
//   - Static: an adapter that replays any schedule.Schedule (Grouped,
//     Rotor, Degraded, ...) unchanged every epoch — today's static
//     Sirius schedules are just one Scheduler implementation.
//   - RotorRR: RotorNet-style round-robin matchings. Each uplink is a
//     rotor switch cycling through the cyclic-shift decomposition of
//     K_n, advancing one matching per epoch and paying a fixed number
//     of dark reconfiguration slots at each advance.
//   - PULSE: per-epoch demand-aware wavelength/matching assignment. A
//     bounded-iteration heuristic solver builds one matching per
//     (slot, uplink) from the sampled VOQ demand matrix.
//   - NegotiaToR: on-demand request/notify matchings. Demand is seen
//     one epoch late (requests ride the control plane), connections are
//     held while demand remains and pay a per-link reconfiguration
//     penalty when (re)established.
//
// Determinism contract: Plan must be a pure function of (epoch, demand,
// receiver state mutated only by previous Plan calls). No wall clock,
// no global RNG — the core replays runs byte-identically at a fixed
// seed, serial or sharded, and the sweep cache depends on it.
package sched

import (
	"fmt"

	"sirius/internal/schedule"
)

// Scheduler plans one epoch of matchings at a time. Geometry accessors
// mirror schedule.Schedule so the core can size its tables; the dynamic
// part is Plan. Implementations are single-goroutine: the core calls
// Plan serially from the coordinator, and one Scheduler instance must
// not be shared between concurrent runs.
type Scheduler interface {
	// Nodes returns the number of nodes.
	Nodes() int
	// Uplinks returns the number of transceivers per node. Receive
	// ports equal uplink indices (the rotor convention): in any slot,
	// at most one source may target a given (dst, uplink) pair.
	Uplinks() int
	// SlotsPerEpoch returns the planning-epoch length in timeslots.
	SlotsPerEpoch() int
	// ConnectionsPerEpoch returns the nominal pair bandwidth in
	// slots/epoch, used by the core to size congestion windows.
	ConnectionsPerEpoch() int
	// Plan fills dst — laid out [(slot*nodes + node)*uplinks + uplink],
	// length SlotsPerEpoch()*Nodes()*Uplinks() — with the coming
	// epoch's matchings; -1 marks a dark (unused or reconfiguring)
	// entry. demand is the read-only nodes×nodes matrix of cells
	// queued at each source for each destination, sampled by the core
	// at the epoch boundary. epoch counts boundaries since Reset. The
	// return value is the number of link-slots left dark to pay for
	// reconfiguration this epoch (the overhead numerator; the epoch's
	// total link-slots SlotsPerEpoch*Nodes*Uplinks is the denominator).
	Plan(epoch int64, demand []int32, dst []int32) (reconfigLinkSlots int)
	// Reset clears any cross-epoch state (held connections, delayed
	// demand) so a fresh run replays identically. The core calls it
	// once before the first Plan.
	Reset()
}

// CheckMatching verifies the contention-freedom safety property of one
// planned epoch: within any (slot, uplink) plane the non-dark
// src→dst map is injective, and every destination is in range. It is
// the dynamic counterpart of schedule.CheckContentionFree and backs the
// demand-matrix fuzzers.
func CheckMatching(nodes, uplinks, slots int, dst []int32) error {
	if len(dst) != slots*nodes*uplinks {
		return fmt.Errorf("sched: plan has %d entries, want %d", len(dst), slots*nodes*uplinks)
	}
	seen := make([]int32, nodes*uplinks)
	for slot := 0; slot < slots; slot++ {
		for i := range seen {
			seen[i] = -1
		}
		base := slot * nodes * uplinks
		for node := 0; node < nodes; node++ {
			for u := 0; u < uplinks; u++ {
				d := dst[base+node*uplinks+u]
				if d < 0 {
					continue
				}
				if int(d) >= nodes {
					return fmt.Errorf("sched: slot %d node %d uplink %d targets out-of-range %d", slot, node, u, d)
				}
				if prev := seen[int(d)*uplinks+u]; prev >= 0 {
					return fmt.Errorf("sched: slot %d: nodes %d and %d both target %d on uplink %d", slot, prev, node, d, u)
				}
				seen[int(d)*uplinks+u] = int32(node)
			}
		}
	}
	return nil
}

// Static adapts a static schedule.Schedule to the Scheduler interface:
// every epoch replays the same precomputed table with zero
// reconfiguration cost. A core run driven by Static(s) is byte-identical
// to one driven by s directly (pinned by tests) — the proof that the
// dynamic path is a strict generalization of the static one.
type Static struct {
	s     schedule.Schedule
	table []int32
}

// NewStatic precomputes the wrapped schedule's epoch table.
func NewStatic(s schedule.Schedule) *Static {
	n, u, e := s.Nodes(), s.Uplinks(), s.SlotsPerEpoch()
	table := make([]int32, e*n*u)
	for slot := 0; slot < e; slot++ {
		for node := 0; node < n; node++ {
			for up := 0; up < u; up++ {
				table[(slot*n+node)*u+up] = int32(s.Dst(node, up, slot))
			}
		}
	}
	return &Static{s: s, table: table}
}

// Nodes implements Scheduler.
func (a *Static) Nodes() int { return a.s.Nodes() }

// Uplinks implements Scheduler.
func (a *Static) Uplinks() int { return a.s.Uplinks() }

// SlotsPerEpoch implements Scheduler.
func (a *Static) SlotsPerEpoch() int { return a.s.SlotsPerEpoch() }

// ConnectionsPerEpoch implements Scheduler.
func (a *Static) ConnectionsPerEpoch() int { return a.s.ConnectionsPerEpoch() }

// Plan implements Scheduler by copying the precomputed table.
func (a *Static) Plan(epoch int64, demand []int32, dst []int32) int {
	copy(dst, a.table)
	return 0
}

// Reset implements Scheduler (no cross-epoch state).
func (a *Static) Reset() {}

// SlotFor returns a direct (uplink, slot) for the pair, delegating to
// the wrapped static schedule.
func (a *Static) SlotFor(src, dst int) (uplink, slot int) { return a.s.SlotFor(src, dst) }

// Schedule returns the wrapped static schedule.
func (a *Static) Schedule() schedule.Schedule { return a.s }
