package sched

import (
	"testing"

	"sirius/internal/rng"
)

// FuzzPlanContentionFree drives PULSE and NegotiaToR over randomized
// demand matrices and epoch sequences, asserting the safety invariants
// that the core engine relies on: every plan is a contention-free
// matching (per (slot, uplink) plane, injective src→dst, in-range), and
// PULSE never serves a pair beyond its sampled demand.
func FuzzPlanContentionFree(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(2), uint8(4), uint8(1))
	f.Add(uint64(42), uint8(16), uint8(3), uint8(8), uint8(2))
	f.Add(uint64(7), uint8(5), uint8(1), uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, upRaw, slotRaw, recfgRaw uint8) {
		n := 2 + int(nRaw)%31       // 2..32
		up := 1 + int(upRaw)%4      // 1..4
		slots := 1 + int(slotRaw)%8 // 1..8
		recfg := int(recfgRaw) % slots
		p, err := NewPULSE(n, up, slots, recfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewNegotiaToR(n, up, slots, recfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		rn := rng.New(seed)
		demand := make([]int32, n*n)
		dst := make([]int32, slots*n*up)
		for epoch := int64(0); epoch < 6; epoch++ {
			for i := range demand {
				demand[i] = 0
				if rn.Intn(4) == 0 {
					demand[i] = int32(rn.Intn(32))
				}
			}
			for i := 0; i < n; i++ {
				demand[i*n+i] = 0 // no self traffic
			}
			rc := p.Plan(epoch, demand, dst)
			if rc < 0 {
				t.Fatalf("PULSE: negative reconfig %d", rc)
			}
			if err := CheckMatching(n, up, slots, dst); err != nil {
				t.Fatalf("PULSE epoch %d (n=%d up=%d slots=%d recfg=%d): %v", epoch, n, up, slots, recfg, err)
			}
			for i, s := range servedPerPair(n, up, dst) {
				if s > demand[i] {
					t.Fatalf("PULSE epoch %d: pair (%d,%d) served %d > demand %d", epoch, i/n, i%n, s, demand[i])
				}
			}
			rc = g.Plan(epoch, demand, dst)
			if rc < 0 {
				t.Fatalf("NegotiaToR: negative reconfig %d", rc)
			}
			if err := CheckMatching(n, up, slots, dst); err != nil {
				t.Fatalf("NegotiaToR epoch %d (n=%d up=%d slots=%d recfg=%d): %v", epoch, n, up, slots, recfg, err)
			}
		}
	})
}
