package sched

import "fmt"

// NegotiaToR models on-demand request/notify reconfiguration: sources
// request circuits for queued traffic, the fabric notifies them of
// granted matchings, and data flows only after the exchange completes.
// Two costs are charged, following the paper's accounting:
//
//   - Control latency: Plan sees the demand matrix one epoch late
//     (requests ride the control plane to the arbiter and notifications
//     ride back). The very first epoch is entirely dark — no requests
//     have arrived yet.
//   - Reconfiguration: a newly established (src, uplink) → dst circuit
//     is dark for Reconfig slots before serving. Circuits are held
//     while requested demand remains and released when it drains (the
//     rotorsim request_matching/release_matching discipline), so
//     long-lived hot pairs amortize the penalty and churny traffic
//     pays it repeatedly.
//
// Receiver ports follow the rotor convention: circuit (src, u) → dst
// occupies receive port u of dst exclusively until released.
type NegotiaToR struct {
	nodes   int
	uplinks int
	slots   int
	recfg   int
	probes  int

	prev     []int32 // demand sampled one epoch ago (requests in flight)
	havePrev bool
	rem      []int32 // unserved requested demand, consumed as slots are planned
	cand     candSet
	cur      []int32 // (src*uplinks+u) → held dst, -1 if idle
	darkLeft []int32 // (src*uplinks+u) → reconfig slots still owed
	rxBusy   []int32 // (dst*uplinks+u) → holding src, -1 if free
}

// NewNegotiaToR builds a NegotiaToR scheduler. probeBound caps the
// candidate probes per circuit establishment; 0 means 2×uplinks.
func NewNegotiaToR(nodes, uplinks, slotsPerEpoch, reconfigSlots, probeBound int) (*NegotiaToR, error) {
	switch {
	case nodes < 2:
		return nil, fmt.Errorf("sched: need >= 2 nodes")
	case uplinks < 1:
		return nil, fmt.Errorf("sched: need >= 1 uplink")
	case slotsPerEpoch < 1:
		return nil, fmt.Errorf("sched: need >= 1 slot per epoch")
	case reconfigSlots < 0 || reconfigSlots >= slotsPerEpoch:
		return nil, fmt.Errorf("sched: reconfig slots (%d) must be in [0, slots per epoch)", reconfigSlots)
	case probeBound < 0:
		return nil, fmt.Errorf("sched: probe bound must be >= 0")
	}
	if probeBound == 0 {
		probeBound = 2 * uplinks
	}
	ng := &NegotiaToR{
		nodes: nodes, uplinks: uplinks, slots: slotsPerEpoch,
		recfg: reconfigSlots, probes: probeBound,
		prev:     make([]int32, nodes*nodes),
		rem:      make([]int32, nodes*nodes),
		cur:      make([]int32, nodes*uplinks),
		darkLeft: make([]int32, nodes*uplinks),
		rxBusy:   make([]int32, nodes*uplinks),
	}
	ng.Reset()
	return ng, nil
}

// Nodes implements Scheduler.
func (g *NegotiaToR) Nodes() int { return g.nodes }

// Uplinks implements Scheduler.
func (g *NegotiaToR) Uplinks() int { return g.uplinks }

// SlotsPerEpoch implements Scheduler.
func (g *NegotiaToR) SlotsPerEpoch() int { return g.slots }

// ConnectionsPerEpoch implements Scheduler: a held circuit can serve a
// pair every slot of the epoch.
func (g *NegotiaToR) ConnectionsPerEpoch() int { return g.slots }

// Plan implements Scheduler.
func (g *NegotiaToR) Plan(epoch int64, demand []int32, dst []int32) int {
	n, up := g.nodes, g.uplinks
	reconfig := 0
	if !g.havePrev {
		// Requests are still in flight: nothing is granted yet.
		for i := range dst[:g.slots*n*up] {
			dst[i] = -1
		}
		copy(g.prev, demand)
		g.havePrev = true
		return 0
	}
	copy(g.rem, g.prev)
	g.cand.build(n, g.probes, g.prev)
	for slot := 0; slot < g.slots; slot++ {
		base := slot * n * up
		// Serve or release held circuits first, then establish new
		// ones — a fixed order shared by every replay.
		for src := 0; src < n; src++ {
			for u := 0; u < up; u++ {
				link := src*up + u
				e := base + link
				dst[e] = -1
				d := g.cur[link]
				if d < 0 {
					continue
				}
				if g.rem[src*n+int(d)] <= 0 {
					// Requested demand drained: release the circuit.
					g.rxBusy[int(d)*up+u] = -1
					g.cur[link] = -1
					g.darkLeft[link] = 0
					continue
				}
				if g.darkLeft[link] > 0 {
					g.darkLeft[link]--
					reconfig++
					continue
				}
				dst[e] = d
				g.rem[src*n+int(d)]--
			}
		}
		// Establish new circuits on idle links, rotating the source
		// start for fairness (pure function of epoch and slot).
		start := int((epoch*int64(g.slots) + int64(slot)) % int64(n))
		if start < 0 {
			start += n
		}
		for i := 0; i < n; i++ {
			src := start + i
			if src >= n {
				src -= n
			}
			for u := 0; u < up; u++ {
				link := src*up + u
				if g.cur[link] >= 0 {
					continue
				}
				for _, d := range g.cand.lists[src] {
					if g.rem[src*n+int(d)] <= 0 || g.rxBusy[int(d)*up+u] >= 0 {
						continue
					}
					g.cur[link] = d
					g.rxBusy[int(d)*up+u] = int32(src)
					g.darkLeft[link] = int32(g.recfg)
					if g.recfg > 0 {
						// The establishment slot itself is the first
						// reconfiguration slot.
						g.darkLeft[link]--
						reconfig++
					} else {
						dst[base+link] = d
						g.rem[src*n+int(d)]--
					}
					break
				}
			}
		}
	}
	copy(g.prev, demand)
	return reconfig
}

// Reset implements Scheduler: drop held circuits and in-flight requests.
func (g *NegotiaToR) Reset() {
	g.havePrev = false
	for i := range g.cur {
		g.cur[i] = -1
		g.rxBusy[i] = -1
		g.darkLeft[i] = 0
	}
}
