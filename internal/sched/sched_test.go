package sched

import (
	"testing"

	"sirius/internal/rng"
	"sirius/internal/schedule"
)

func planOnce(t *testing.T, s Scheduler, epoch int64, demand []int32) ([]int32, int) {
	t.Helper()
	n, u, e := s.Nodes(), s.Uplinks(), s.SlotsPerEpoch()
	if demand == nil {
		demand = make([]int32, n*n)
	}
	dst := make([]int32, e*n*u)
	rc := s.Plan(epoch, demand, dst)
	return dst, rc
}

func TestStaticAdapterMatchesSchedule(t *testing.T) {
	g, err := schedule.NewGrouped(16, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := NewStatic(g)
	if a.Nodes() != g.Nodes() || a.Uplinks() != g.Uplinks() ||
		a.SlotsPerEpoch() != g.SlotsPerEpoch() || a.ConnectionsPerEpoch() != g.ConnectionsPerEpoch() {
		t.Fatal("adapter geometry disagrees with wrapped schedule")
	}
	for _, epoch := range []int64{0, 1, 7} {
		dst, rc := planOnce(t, a, epoch, nil)
		if rc != 0 {
			t.Fatalf("static adapter charged %d reconfig link-slots", rc)
		}
		for slot := 0; slot < g.SlotsPerEpoch(); slot++ {
			for node := 0; node < g.Nodes(); node++ {
				for u := 0; u < g.Uplinks(); u++ {
					want := int32(g.Dst(node, u, slot))
					if got := dst[(slot*g.Nodes()+node)*g.Uplinks()+u]; got != want {
						t.Fatalf("epoch %d slot %d node %d uplink %d: got %d want %d", epoch, slot, node, u, got, want)
					}
				}
			}
		}
	}
	if u, s := a.SlotFor(3, 9); u != 2 || g.Dst(3, u, s) != 9 {
		t.Fatalf("SlotFor(3,9) = (%d,%d), not a connection to 9", u, s)
	}
}

func TestRotorRRContentionFreeAndUniform(t *testing.T) {
	for _, tc := range []struct{ n, up, slots, recfg int }{
		{8, 2, 4, 1},
		{64, 6, 16, 2},
		{16, 1, 8, 0},
	} {
		r, err := NewRotorRR(tc.n, tc.up, tc.slots, tc.recfg)
		if err != nil {
			t.Fatal(err)
		}
		// Per-pair serving slots accumulated over one full rotor cycle
		// (n-1 epochs): blind round-robin must cover every ordered
		// pair src != dst equally.
		count := make([]int64, tc.n*tc.n)
		for epoch := int64(0); epoch < int64(tc.n-1); epoch++ {
			dst, rc := planOnce(t, r, epoch, nil)
			if want := tc.recfg * tc.n * tc.up; rc != want {
				t.Fatalf("n=%d epoch %d: reconfig %d, want %d", tc.n, epoch, rc, want)
			}
			if err := CheckMatching(tc.n, tc.up, tc.slots, dst); err != nil {
				t.Fatalf("n=%d epoch %d: %v", tc.n, epoch, err)
			}
			for i, d := range dst {
				if d >= 0 {
					src := i / tc.up % tc.n
					count[src*tc.n+int(d)]++
				}
			}
		}
		want := int64(tc.up * (tc.slots - tc.recfg))
		for src := 0; src < tc.n; src++ {
			for d := 0; d < tc.n; d++ {
				got := count[src*tc.n+d]
				if src == d {
					if got != 0 {
						t.Fatalf("n=%d: self-pair %d served %d slots", tc.n, src, got)
					}
					continue
				}
				if got != want {
					t.Fatalf("n=%d: pair (%d,%d) served %d slots per cycle, want %d", tc.n, src, d, got, want)
				}
			}
		}
	}
}

// servedPerPair tallies how many cells a plan serves for each (src,dst).
func servedPerPair(n, up int, dst []int32) []int32 {
	served := make([]int32, n*n)
	for i, d := range dst {
		if d >= 0 {
			src := i / up % n
			served[src*n+int(d)]++
		}
	}
	return served
}

func TestPULSEServesWithinDemand(t *testing.T) {
	const n, up, slots = 16, 3, 8
	p, err := NewPULSE(n, up, slots, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	demand := make([]int32, n*n)
	demand[0*n+5] = 100 // hot pair
	demand[1*n+5] = 3
	demand[2*n+7] = 1
	dst, rc := planOnce(t, p, 0, demand)
	if err := CheckMatching(n, up, slots, dst); err != nil {
		t.Fatal(err)
	}
	served := servedPerPair(n, up, dst)
	for i, s := range served {
		if s > demand[i] {
			t.Fatalf("pair (%d,%d) served %d > demand %d", i/n, i%n, s, demand[i])
		}
	}
	// The hot pair should get close to a full plane's serving slots:
	// 7 serving slots (8 minus 1 reconfig) on each of up to 3 uplinks,
	// capped by receiver-port contention with (1,5).
	if served[0*n+5] < slots-1 {
		t.Fatalf("hot pair served only %d slots", served[0*n+5])
	}
	if rc <= 0 {
		t.Fatal("expected reconfiguration overhead on a loaded epoch")
	}
	// Zero demand plans an all-dark epoch.
	dark, rc0 := planOnce(t, p, 1, nil)
	if rc0 != 0 {
		t.Fatalf("idle epoch charged %d reconfig link-slots", rc0)
	}
	for _, d := range dark {
		if d != -1 {
			t.Fatal("idle epoch planned a live link")
		}
	}
}

func TestNegotiaToRDelayHoldRelease(t *testing.T) {
	const n, up, slots = 8, 2, 8
	g, err := NewNegotiaToR(n, up, slots, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	demand := make([]int32, n*n)
	demand[3*n+4] = 5
	// Epoch 0: requests in flight, nothing granted.
	dst0, rc0 := planOnce(t, g, 0, demand)
	if rc0 != 0 {
		t.Fatalf("first epoch charged %d reconfig link-slots", rc0)
	}
	for _, d := range dst0 {
		if d != -1 {
			t.Fatal("first epoch planned a live link before any request arrived")
		}
	}
	// Epoch 1: the epoch-0 demand is visible; both uplinks establish
	// circuits to the hot destination (distinct receive ports), each
	// pays 2 dark slots, the 5 requested cells are served, circuits
	// release as the demand drains.
	idle := make([]int32, n*n)
	dst1, rc1 := planOnce(t, g, 1, idle)
	if err := CheckMatching(n, up, slots, dst1); err != nil {
		t.Fatal(err)
	}
	if rc1 != 2*up {
		t.Fatalf("reconfig = %d link-slots, want %d", rc1, 2*up)
	}
	served := servedPerPair(n, up, dst1)
	if served[3*n+4] != 5 {
		t.Fatalf("pair (3,4) served %d cells, want 5", served[3*n+4])
	}
	// Epoch 2: demand drained, fabric dark again.
	dst2, _ := planOnce(t, g, 2, idle)
	for _, d := range dst2 {
		if d != -1 {
			t.Fatal("circuit not released after demand drained")
		}
	}
}

func TestSchedulersReplayAfterReset(t *testing.T) {
	const n, up, slots = 12, 2, 6
	mk := func() []Scheduler {
		p, _ := NewPULSE(n, up, slots, 1, 0)
		g, _ := NewNegotiaToR(n, up, slots, 1, 0)
		r, _ := NewRotorRR(n, up, slots, 1)
		return []Scheduler{p, g, r}
	}
	demands := make([][]int32, 4)
	rn := rng.New(99)
	for e := range demands {
		demands[e] = make([]int32, n*n)
		for i := range demands[e] {
			if rn.Intn(3) == 0 {
				demands[e][i] = int32(rn.Intn(20))
			}
		}
	}
	run := func(s Scheduler) [][]int32 {
		s.Reset()
		var out [][]int32
		for e, d := range demands {
			dst := make([]int32, slots*n*up)
			s.Plan(int64(e), d, dst)
			out = append(out, dst)
		}
		return out
	}
	for _, s := range mk() {
		a, b := run(s), run(s)
		for e := range a {
			for i := range a[e] {
				if a[e][i] != b[e][i] {
					t.Fatalf("%T: replay diverged at epoch %d entry %d", s, e, i)
				}
			}
		}
	}
}

func TestCheckMatchingDetectsContention(t *testing.T) {
	const n, up, slots = 4, 1, 1
	dst := []int32{2, 2, -1, -1} // nodes 0 and 1 both target 2 on uplink 0
	if err := CheckMatching(n, up, slots, dst); err == nil {
		t.Fatal("contention not detected")
	}
	dst = []int32{9, -1, -1, -1}
	if err := CheckMatching(n, up, slots, dst); err == nil {
		t.Fatal("out-of-range destination not detected")
	}
	if err := CheckMatching(n, up, slots, []int32{-1}); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewRotorRR(1, 1, 4, 0); err == nil {
		t.Fatal("nodes < 2 accepted")
	}
	if _, err := NewRotorRR(8, 2, 4, 4); err == nil {
		t.Fatal("reconfig >= slots accepted")
	}
	if _, err := NewPULSE(8, 0, 4, 0, 0); err == nil {
		t.Fatal("uplinks < 1 accepted")
	}
	if _, err := NewNegotiaToR(8, 2, 0, 0, 0); err == nil {
		t.Fatal("slots < 1 accepted")
	}
}
