package cell

import (
	"bytes"
	"testing"
	"testing/quick"

	"sirius/internal/rng"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := Cell{
		Kind:    KindData,
		Flags:   FlagLast,
		Src:     12,
		Dst:     107,
		Flow:    0xDEADBEEF,
		Seq:     42,
		Payload: []byte("hello sirius"),
	}
	buf := c.Encode(nil)
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	if got.Kind != c.Kind || got.Flags != c.Flags || got.Src != c.Src ||
		got.Dst != c.Dst || got.Flow != c.Flow || got.Seq != c.Seq ||
		!bytes.Equal(got.Payload, c.Payload) {
		t.Errorf("round trip mismatch: %+v != %+v", got, c)
	}
	if !got.Last() {
		t.Error("Last flag lost")
	}
}

func TestSuspicionPiggyback(t *testing.T) {
	c := Cell{Kind: KindData, Src: 2, Dst: 3, Seq: 99, Payload: []byte{1}}
	if _, _, ok := c.Suspicion(); ok {
		t.Error("fresh cell already carries a suspicion")
	}
	c.SetSuspicion(7, 123)
	buf := c.Encode(nil)
	got, _, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	peer, sw, ok := got.Suspicion()
	if !ok || peer != 7 || sw != 123 {
		t.Errorf("suspicion = (%d,%d,%v), want (7,123,true)", peer, sw, ok)
	}
	if got.Aux != 7 || got.Flags&FlagSuspect == 0 {
		t.Errorf("encoding lost aux/flag: %+v", got)
	}
	// FlagFin travels in flags like any other bit.
	fin := Cell{Kind: KindControl, Flags: FlagFin, Src: 1, Dst: 2}
	g2, _, err := Decode(fin.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if g2.Flags&FlagFin == 0 {
		t.Error("FlagFin lost")
	}
}

func TestLifecyclePiggyback(t *testing.T) {
	c := Cell{Kind: KindData, Src: 2, Dst: 3, Seq: 99, Payload: []byte{1}}
	if _, _, ok := c.Join(); ok {
		t.Error("fresh cell already carries a join")
	}
	if _, _, ok := c.Drain(); ok {
		t.Error("fresh cell already carries a drain")
	}
	c.SetJoin(5, 42)
	got, _, err := Decode(c.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if node, sw, ok := got.Join(); !ok || node != 5 || sw != 42 {
		t.Errorf("join = (%d,%d,%v), want (5,42,true)", node, sw, ok)
	}
	// The announcement kinds are gated on their own flag: a join is not a
	// suspicion or a drain.
	if _, _, ok := got.Suspicion(); ok {
		t.Error("join read back as suspicion")
	}
	if _, _, ok := got.Drain(); ok {
		t.Error("join read back as drain")
	}
	d := Cell{Kind: KindData, Src: 1, Dst: 2, Seq: 7, Payload: []byte{9}}
	d.SetDrain(3, 17)
	got2, _, err := Decode(d.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if node, sw, ok := got2.Drain(); !ok || node != 3 || sw != 17 {
		t.Errorf("drain = (%d,%d,%v), want (3,17,true)", node, sw, ok)
	}
	// Hello and welcome are control cells distinguished by flags.
	hello := Cell{Kind: KindControl, Flags: FlagHello, Src: 6}
	g3, _, err := Decode(hello.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if g3.Flags&FlagHello == 0 || g3.Src != 6 {
		t.Error("hello lost flags or src")
	}
	welcome := Cell{Kind: KindControl, Src: 0, Dst: 6, Payload: []byte{0x3f}}
	welcome.SetJoin(6, 42)
	g4, _, err := Decode(welcome.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if node, sw, ok := g4.Join(); !ok || node != 6 || sw != 42 || g4.Payload[0] != 0x3f {
		t.Error("welcome lost join fields or membership payload")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("short buffer decoded")
	}
	c := Cell{Kind: KindData, Payload: []byte("x")}
	buf := c.Encode(nil)
	buf[0] = 0xFF
	if _, _, err := Decode(buf); err == nil {
		t.Error("bad magic decoded")
	}
	buf[0] = 0x5C
	buf[1] = 99
	if _, _, err := Decode(buf); err == nil {
		t.Error("bad kind decoded")
	}
	buf[1] = byte(KindData)
	if _, _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Error("truncated payload decoded")
	}
}

func TestEncodeStreaming(t *testing.T) {
	// Multiple cells back to back decode in sequence.
	var buf []byte
	for i := 0; i < 5; i++ {
		c := Cell{Kind: KindControl, Seq: uint32(i)}
		buf = c.Encode(buf)
	}
	off := 0
	for i := 0; i < 5; i++ {
		c, n, err := Decode(buf[off:])
		if err != nil {
			t.Fatal(err)
		}
		if c.Seq != uint32(i) {
			t.Errorf("cell %d decoded seq %d", i, c.Seq)
		}
		off += n
	}
	if off != len(buf) {
		t.Error("leftover bytes")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(kindRaw, flags uint8, src, dst uint16, flow, seq uint32, payload []byte) bool {
		kind := Kind(kindRaw%3) + KindData
		c := Cell{Kind: kind, Flags: flags, Src: src, Dst: dst, Flow: flow, Seq: seq, Payload: payload}
		got, n, err := Decode(c.Encode(nil))
		if err != nil || n != HeaderLen+len(payload) {
			return false
		}
		return got.Kind == kind && got.Flags == flags && got.Src == src &&
			got.Dst == dst && got.Flow == flow && got.Seq == seq &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReorderInOrder(t *testing.T) {
	r := NewReorder(562)
	for i := uint32(0); i < 10; i++ {
		if got := r.Add(i); got != 1 {
			t.Fatalf("in-order add %d released %d cells, want 1", i, got)
		}
	}
	if r.PeakBytes() != 0 {
		t.Errorf("in-order delivery buffered %d bytes, want 0", r.PeakBytes())
	}
	if r.Delivered() != 10 {
		t.Errorf("delivered = %d, want 10", r.Delivered())
	}
}

func TestReorderOutOfOrder(t *testing.T) {
	r := NewReorder(100)
	if r.Add(2) != 0 || r.Add(1) != 0 {
		t.Fatal("future cells should not deliver")
	}
	if r.Holding() != 2 {
		t.Fatalf("holding %d, want 2", r.Holding())
	}
	// Cell 0 releases the whole run.
	if got := r.Add(0); got != 3 {
		t.Fatalf("released %d, want 3", got)
	}
	if r.Holding() != 0 {
		t.Error("buffer not drained")
	}
	if r.PeakBytes() != 200 {
		t.Errorf("peak = %d bytes, want 200", r.PeakBytes())
	}
}

func TestReorderDuplicates(t *testing.T) {
	r := NewReorder(100)
	r.Add(0)
	if r.Add(0) != 0 {
		t.Error("duplicate of delivered cell released something")
	}
	r.Add(2)
	if r.Add(2) != 0 {
		t.Error("duplicate of held cell released something")
	}
	if r.Add(1) != 2 {
		t.Error("wrong release after duplicates")
	}
}

func TestReorderPropertyAnyPermutation(t *testing.T) {
	// Any arrival permutation delivers all cells exactly once, in order.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		perm := rng.New(seed).Perm(n)
		r := NewReorder(1)
		total := 0
		for _, seq := range perm {
			total += r.Add(uint32(seq))
		}
		return total == n && r.Holding() == 0 && r.Next() == uint32(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReorderPeakBound(t *testing.T) {
	// Reversed arrival of n cells peaks at n-1 held.
	r := NewReorder(1)
	const n = 20
	for i := n - 1; i >= 0; i-- {
		r.Add(uint32(i))
	}
	if r.PeakBytes() != n-1 {
		t.Errorf("peak = %d, want %d", r.PeakBytes(), n-1)
	}
}

func TestCellsForBytes(t *testing.T) {
	cases := []struct{ bytes, per, want int }{
		{0, 542, 1},
		{1, 542, 1},
		{542, 542, 1},
		{543, 542, 2},
		{100_000, 542, 185},
	}
	for _, c := range cases {
		if got := CellsForBytes(c.bytes, c.per); got != c.want {
			t.Errorf("CellsForBytes(%d,%d) = %d, want %d", c.bytes, c.per, got, c.want)
		}
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewReorder(0)", func() { NewReorder(0) })
	mustPanic("CellsForBytes per=0", func() { CellsForBytes(10, 0) })
}
