// Package cell defines Sirius' fixed-size transmission unit and the
// receiver-side reordering machinery.
//
// Sirius slices all traffic into fixed-size cells (§4.2; 562 bytes in the
// default configuration: a 90 ns transmission slot at 50 Gb/s). Because
// cells of one flow take different paths through different intermediate
// nodes, they can arrive out of order; the destination holds them in a
// per-flow reorder buffer until the missing earlier cells arrive. The
// congestion-control protocol keeps queuing — and therefore the reorder
// buffer — small (Fig. 10d).
package cell

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// HeaderLen is the encoded header size in bytes.
const HeaderLen = 20

// Kind discriminates cell types on the wire.
type Kind uint8

// Cell kinds.
const (
	KindData    Kind = iota + 1
	KindControl      // carries only piggybacked requests/grants
	KindSync         // time-synchronization beacon
)

// Flags.
const (
	// FlagLast marks the final cell of a flow.
	FlagLast uint8 = 1 << iota
	// FlagSuspect marks a cell carrying a piggybacked failure suspicion
	// (§4.5): Aux names the suspected node and Flow carries the proposed
	// schedule-switch epoch. The flood rides ordinary data cells — the
	// cyclic schedule connects every pair once per epoch, so one epoch of
	// data traffic disseminates a suspicion fabric-wide.
	FlagSuspect
	// FlagFin marks a control cell announcing that the sender has
	// transmitted its final scheduled cell toward the receiver: the
	// receiver can account the stream closed without a timeout.
	FlagFin
	// FlagJoin marks a lifecycle join announcement. On a data cell it is
	// the piggybacked join flood (Aux names the joining node, Flow the
	// agreed switch epoch — the same min-S convergence as FlagSuspect).
	// On a control cell it is a *welcome*: a member tells the joiner the
	// switch epoch (Flow) and the fabric membership as of that epoch
	// (payload bitmap, one bit per port).
	FlagJoin
	// FlagDrain marks a data cell carrying a piggybacked planned-drain
	// announcement: Aux names the draining node and Flow the switch epoch
	// from which the fabric stops scheduling toward it.
	FlagDrain
	// FlagHello marks a control cell from a not-yet-admitted node
	// announcing that it is attached and ready to join: Src names the
	// joiner. Members hold the expansion switch until every scripted
	// joiner has said hello.
	FlagHello
)

// Cell is one fixed-size unit of transmission. Src and Dst are node ids;
// Flow identifies the flow and Seq the cell's position within it. Aux is
// a one-byte side channel rides in the header's former pad byte; it
// carries the suspected node id when FlagSuspect is set.
type Cell struct {
	Kind    Kind
	Flags   uint8
	Aux     uint8
	Src     uint16
	Dst     uint16
	Flow    uint32
	Seq     uint32
	Payload []byte
}

// Last reports whether this is the flow's final cell.
func (c *Cell) Last() bool { return c.Flags&FlagLast != 0 }

// Suspicion returns the piggybacked failure suspicion, if any: the
// suspected node id and the proposed fabric-wide schedule-switch epoch.
func (c *Cell) Suspicion() (peer int, switchEpoch int, ok bool) {
	if c.Flags&FlagSuspect == 0 {
		return 0, 0, false
	}
	return int(c.Aux), int(c.Flow), true
}

// SetSuspicion piggybacks a failure suspicion on the cell.
func (c *Cell) SetSuspicion(peer int, switchEpoch int) {
	c.Flags |= FlagSuspect
	c.Aux = uint8(peer)
	c.Flow = uint32(switchEpoch)
}

// The lifecycle announcements below reuse the Aux/Flow side channels, so
// a cell carries at most one of suspicion/join/drain — the flooding
// layer attaches announcements to distinct cells round-robin.

// Join returns the piggybacked join announcement, if any: the joining
// node id and the agreed switch epoch.
func (c *Cell) Join() (node int, switchEpoch int, ok bool) {
	if c.Flags&FlagJoin == 0 {
		return 0, 0, false
	}
	return int(c.Aux), int(c.Flow), true
}

// SetJoin piggybacks a join announcement on the cell.
func (c *Cell) SetJoin(node int, switchEpoch int) {
	c.Flags |= FlagJoin
	c.Aux = uint8(node)
	c.Flow = uint32(switchEpoch)
}

// Drain returns the piggybacked planned-drain announcement, if any: the
// draining node id and the switch epoch from which the fabric stops
// scheduling toward it.
func (c *Cell) Drain() (node int, switchEpoch int, ok bool) {
	if c.Flags&FlagDrain == 0 {
		return 0, 0, false
	}
	return int(c.Aux), int(c.Flow), true
}

// SetDrain piggybacks a planned-drain announcement on the cell.
func (c *Cell) SetDrain(node int, switchEpoch int) {
	c.Flags |= FlagDrain
	c.Aux = uint8(node)
	c.Flow = uint32(switchEpoch)
}

const magic = 0x5C // "Sirius Cell"

// ErrBadCell is returned when decoding malformed bytes.
var ErrBadCell = errors.New("cell: malformed encoding")

// Encode appends the wire encoding of c to buf and returns the result.
// Layout (big endian, as is conventional on the wire):
//
//	magic(1) kind(1) flags(1) aux(1) src(2) dst(2) flow(4) seq(4) paylen(4)
func (c *Cell) Encode(buf []byte) []byte {
	var h [HeaderLen]byte
	h[0] = magic
	h[1] = byte(c.Kind)
	h[2] = c.Flags
	h[3] = c.Aux
	binary.BigEndian.PutUint16(h[4:], c.Src)
	binary.BigEndian.PutUint16(h[6:], c.Dst)
	binary.BigEndian.PutUint32(h[8:], c.Flow)
	binary.BigEndian.PutUint32(h[12:], c.Seq)
	binary.BigEndian.PutUint32(h[16:], uint32(len(c.Payload)))
	buf = append(buf, h[:]...)
	return append(buf, c.Payload...)
}

// Decode parses one cell from the front of buf, returning the cell and the
// number of bytes consumed. The returned Payload is an owned copy,
// independent of buf; use DecodeAlias to avoid the copy.
func Decode(buf []byte) (Cell, int, error) {
	c, n, err := DecodeAlias(buf)
	if err == nil && c.Payload != nil {
		c.Payload = append([]byte(nil), c.Payload...)
	}
	return c, n, err
}

// DecodeAlias decodes a cell whose Payload aliases buf directly — no
// copy, no allocation. The caller must be done with the cell before it
// overwrites or reuses buf; receive hot paths that verify the payload
// in place and move on (wire.node) use this to stay zero-alloc.
func DecodeAlias(buf []byte) (Cell, int, error) {
	if len(buf) < HeaderLen {
		return Cell{}, 0, fmt.Errorf("%w: short header (%d bytes)", ErrBadCell, len(buf))
	}
	if buf[0] != magic {
		return Cell{}, 0, fmt.Errorf("%w: bad magic 0x%02x", ErrBadCell, buf[0])
	}
	k := Kind(buf[1])
	if k != KindData && k != KindControl && k != KindSync {
		return Cell{}, 0, fmt.Errorf("%w: unknown kind %d", ErrBadCell, k)
	}
	payLen := binary.BigEndian.Uint32(buf[16:])
	if uint32(len(buf)-HeaderLen) < payLen {
		return Cell{}, 0, fmt.Errorf("%w: truncated payload", ErrBadCell)
	}
	c := Cell{
		Kind:  k,
		Flags: buf[2],
		Aux:   buf[3],
		Src:   binary.BigEndian.Uint16(buf[4:]),
		Dst:   binary.BigEndian.Uint16(buf[6:]),
		Flow:  binary.BigEndian.Uint32(buf[8:]),
		Seq:   binary.BigEndian.Uint32(buf[12:]),
	}
	if payLen > 0 {
		c.Payload = buf[HeaderLen : HeaderLen+int(payLen)]
	}
	return c, HeaderLen + int(payLen), nil
}

// Reorder is a per-flow reorder buffer: it accepts cells in arrival order
// and releases them in sequence order, tracking the peak number of bytes
// held (the Fig. 10d metric).
type Reorder struct {
	cellBytes int
	next      uint32
	held      map[uint32]bool
	peakCells int
	delivered int
}

// NewReorder returns a buffer for a flow whose cells are cellBytes each.
func NewReorder(cellBytes int) *Reorder {
	if cellBytes <= 0 {
		panic("cell: non-positive cell size")
	}
	return &Reorder{cellBytes: cellBytes, held: make(map[uint32]bool)}
}

// Add accepts the arrival of cell seq and returns how many cells became
// deliverable in order (including this one if it was the next expected).
// Duplicate arrivals are ignored and return 0.
func (r *Reorder) Add(seq uint32) int {
	if seq < r.next || r.held[seq] {
		return 0 // duplicate
	}
	if seq != r.next {
		r.held[seq] = true
		if len(r.held) > r.peakCells {
			r.peakCells = len(r.held)
		}
		return 0
	}
	n := 1
	r.next++
	for r.held[r.next] {
		delete(r.held, r.next)
		r.next++
		n++
	}
	r.delivered += n
	return n
}

// Holding returns the number of cells currently buffered out of order.
func (r *Reorder) Holding() int { return len(r.held) }

// PeakBytes returns the largest buffer occupancy observed, in bytes.
func (r *Reorder) PeakBytes() int { return r.peakCells * r.cellBytes }

// Delivered returns the number of cells released in order so far.
func (r *Reorder) Delivered() int { return r.delivered }

// Next returns the next expected sequence number.
func (r *Reorder) Next() uint32 { return r.next }

// CellsForBytes returns how many cells of the given payload capacity are
// needed to carry a flow of flowBytes (at least one; a flow always sends
// at least one cell).
func CellsForBytes(flowBytes, payloadPerCell int) int {
	if payloadPerCell <= 0 {
		panic("cell: non-positive payload size")
	}
	if flowBytes <= 0 {
		return 1
	}
	return (flowBytes + payloadPerCell - 1) / payloadPerCell
}
