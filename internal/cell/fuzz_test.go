package cell

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the decoder: it must never panic,
// and whenever it accepts an input, re-encoding the result must
// round-trip to an equivalent cell.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Cell{Kind: KindData, Payload: []byte("seed")}).Encode(nil))
	f.Add((&Cell{Kind: KindSync, Flags: FlagLast, Src: 1, Dst: 2, Flow: 3, Seq: 4}).Encode(nil))
	f.Add(bytes.Repeat([]byte{0x5C}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, n, err := Decode(data)
		if err != nil {
			return
		}
		if n < HeaderLen || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := c.Encode(nil)
		c2, n2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != len(re) || c2.Kind != c.Kind || c2.Flags != c.Flags ||
			c2.Src != c.Src || c2.Dst != c.Dst || c2.Flow != c.Flow ||
			c2.Seq != c.Seq || !bytes.Equal(c2.Payload, c.Payload) {
			t.Fatal("round trip mismatch")
		}
	})
}
