package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"sirius/internal/rng"
	"sirius/internal/sweep"
)

// HashPoints content-addresses an expanded point set: FNV-1a 64 over
// (root seed, then for each sweep in name order: the sweep name and
// every point's key and substream seed, in index order). Coordinator and
// worker both hash their locally-expanded sets; equal hashes mean both
// sides will compute identical rows for any leased index, so a version
// or configuration skew is caught before any point runs instead of
// corrupting the merged output.
func HashPoints(rootSeed uint64, points map[string][]sweep.Point) string {
	names := make([]string, 0, len(points))
	for name := range points {
		names = append(names, name)
	}
	sort.Strings(names)
	h := fnv.New64a()
	fmt.Fprintf(h, "root=%d", rootSeed)
	for _, name := range names {
		fmt.Fprintf(h, "\x00sweep=%s", name)
		for i, p := range points[name] {
			fmt.Fprintf(h, "\x00%d\x00%s\x00%d", i, p.Key, rng.PointSeed(rootSeed, uint64(i)))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
