package cluster

import (
	"bytes"
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"
)

// dialRaw opens a plain TCP connection for hand-rolled protocol tests.
func dialRaw(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

// TestFrameRoundTrip writes and re-reads every frame type.
func TestFrameRoundTrip(t *testing.T) {
	for ft := FrameRegister; ft <= FrameError; ft++ {
		payload := []byte(`{"x":"` + ft.String() + `"}`)
		var buf bytes.Buffer
		if err := WriteFrame(&buf, ft, payload); err != nil {
			t.Fatalf("%s: write: %v", ft, err)
		}
		got, gotPayload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", ft, err)
		}
		if got != ft || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("%s: round trip gave %s %q", ft, got, gotPayload)
		}
	}
}

// TestFrameRejects pins the decoder's defensive checks: oversized
// lengths and unknown types are rejected before any payload allocation,
// truncation surfaces as an error, and oversized writes never leave the
// sender.
func TestFrameRejects(t *testing.T) {
	// Length field larger than MaxFrame.
	var over bytes.Buffer
	var h [frameHeader]byte
	binary.BigEndian.PutUint32(h[:4], MaxFrame+1)
	h[4] = uint8(FrameResult)
	over.Write(h[:])
	if _, _, err := ReadFrame(&over); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized length: %v", err)
	}
	// Unknown frame types: zero and past FrameError.
	for _, bad := range []uint8{0, uint8(FrameError) + 1, 0xFF} {
		var buf bytes.Buffer
		binary.BigEndian.PutUint32(h[:4], 0)
		h[4] = bad
		buf.Write(h[:])
		if _, _, err := ReadFrame(&buf); err == nil || !strings.Contains(err.Error(), "unknown frame type") {
			t.Errorf("type %d: %v", bad, err)
		}
	}
	// Truncated header and truncated payload.
	var full bytes.Buffer
	if err := WriteFrame(&full, FrameLease, []byte(`{"sweep":"fig9"}`)); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	for _, n := range []int{0, 1, frameHeader - 1, frameHeader + 3, len(raw) - 1} {
		if _, _, err := ReadFrame(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("truncation at %d/%d bytes accepted", n, len(raw))
		}
	}
	// Oversized write is refused client-side.
	if err := WriteFrame(&bytes.Buffer{}, FrameResult, make([]byte, MaxFrame+1)); err == nil {
		t.Error("oversized write accepted")
	}
}

// TestFrameTypeString covers the debug names, including out-of-range.
func TestFrameTypeString(t *testing.T) {
	if FrameLease.String() != "lease" || FrameHeartbeat.String() != "heartbeat" {
		t.Error("frame type names wrong")
	}
	if s := FrameType(42).String(); s != "type-42" {
		t.Errorf("out-of-range name %q", s)
	}
}
