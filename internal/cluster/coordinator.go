package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sirius/internal/sweep"
	"sirius/internal/telemetry"
)

// registerTimeout bounds how long a fresh connection may take to present
// its Register frame. A client that connects and stalls must not pin a
// coordinator goroutine forever.
const registerTimeout = 10 * time.Second

// CoordinatorConfig configures a sweep coordinator.
type CoordinatorConfig struct {
	// Spec is forwarded opaquely to workers in the Welcome frame so they
	// can expand the same point set (see WelcomeMsg.Spec).
	Spec json.RawMessage
	// RootSeed is the sweep root seed; workers adopt it.
	RootSeed uint64
	// SpecHash is the coordinator's HashPoints over its expanded point
	// set. Workers verify their expansion against it and the coordinator
	// rejects lease requests echoing a different hash. Empty disables
	// the check (tests driving raw points).
	SpecHash string
	// LeaseTTL is how long a granted lease lives without a heartbeat
	// before it is reclaimed. <= 0 defaults to 10s.
	LeaseTTL time.Duration
	// MaxLease caps a lease's total lifetime regardless of heartbeats —
	// the zero-progress guard: a worker that heartbeats forever without
	// producing a result loses the point. <= 0 defaults to 30*LeaseTTL.
	MaxLease time.Duration
	// Registry receives the coordinator's counters and gauges; nil uses
	// telemetry.Default.
	Registry *telemetry.Registry
	// Health, when non-nil, tracks lost workers as degraded conditions:
	// a condition is set when a worker dies (or stalls out) holding
	// leases and cleared when the last of its abandoned points
	// completes, so /healthz shows degraded exactly while reclaimed work
	// is outstanding.
	Health *telemetry.Health
	// Log, when non-nil, receives one line per cluster event (worker
	// join/leave, lease reclaim).
	Log io.Writer
}

// pointID identifies a point across the sweeps of one run.
type pointID struct {
	sweep string
	index int
}

// pointResult is what a pending point's waiter receives.
type pointResult struct {
	rows [][]string
	rec  sweep.PointRecord
	err  error
}

// pendingPoint is one ExecPoint call's state in the lease table.
type pendingPoint struct {
	id   pointID
	key  string
	seed uint64
	done chan pointResult // buffered 1; closed never, delivered once

	leasedTo  string    // worker currently holding the lease ("" = none)
	deadline  time.Time // lease expiry (extended by heartbeats)
	hard      time.Time // zero-progress cap (never extended)
	completed bool
	abandoned bool // ExecPoint's context was cancelled
}

// workerConn is one registered worker connection.
type workerConn struct {
	name string
	id   int
	env  *sweep.RunEnv
	conn net.Conn
}

// Coordinator leases sweep points to remote workers. It implements
// sweep.Executor: plug it into a Runner's Executor field and the sweep
// fans out across every registered worker, surviving worker crashes and
// stalls by reclaiming and re-granting leases (at-least-once execution —
// safe because points are deterministic).
type Coordinator struct {
	cfg CoordinatorConfig
	ln  net.Listener

	mu       sync.Mutex
	queue    []*pendingPoint // leasable, FIFO
	byID     map[pointID]*pendingPoint
	workers  map[string]*workerConn
	lost     map[string]map[pointID]struct{}            // worker -> points it abandoned
	partials map[string]map[string]*sweep.SweepManifest // sweep -> worker -> partial
	finished bool
	closed   bool

	ctrGranted    *telemetry.Counter
	ctrExpired    *telemetry.Counter
	ctrReclaimed  *telemetry.Counter
	ctrCompleted  *telemetry.Counter
	ctrDuplicate  *telemetry.Counter
	ctrRegistered *telemetry.Counter
	gWorkers      *telemetry.Gauge
	gPending      *telemetry.Gauge

	stopc chan struct{}
	wg    sync.WaitGroup
}

// NewCoordinator listens on addr (e.g. ":9070" or "127.0.0.1:0") and
// starts accepting workers. The coordinator runs until Close.
func NewCoordinator(addr string, cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.MaxLease <= 0 {
		cfg.MaxLease = 30 * cfg.LeaseTTL
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	reg := cfg.Registry
	c := &Coordinator{
		cfg:      cfg,
		ln:       ln,
		byID:     make(map[pointID]*pendingPoint),
		workers:  make(map[string]*workerConn),
		lost:     make(map[string]map[pointID]struct{}),
		partials: make(map[string]map[string]*sweep.SweepManifest),

		ctrGranted:    reg.Counter("sirius_cluster_leases_granted_total"),
		ctrExpired:    reg.Counter("sirius_cluster_leases_expired_total"),
		ctrReclaimed:  reg.Counter("sirius_cluster_leases_reclaimed_total"),
		ctrCompleted:  reg.Counter("sirius_cluster_points_completed_total"),
		ctrDuplicate:  reg.Counter("sirius_cluster_results_duplicate_total"),
		ctrRegistered: reg.Counter("sirius_cluster_workers_registered_total"),
		gWorkers:      reg.Gauge("sirius_cluster_workers"),
		gPending:      reg.Gauge("sirius_cluster_points_pending"),

		stopc: make(chan struct{}),
	}
	c.wg.Add(2)
	go c.acceptLoop()
	go c.reclaimLoop()
	return c, nil
}

// Addr returns the bound listen address (useful with ":0").
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// logf writes one coordinator event line.
func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log, "cluster: "+format+"\n", args...)
	}
}

// ExecPoint implements sweep.Executor: the point becomes leasable and
// the call blocks until some worker delivers its result (possibly after
// one or more reclaims), the worker reports a point execution error, or
// ctx is cancelled.
func (c *Coordinator) ExecPoint(ctx context.Context, sweepName string, index int, p sweep.Point, seed uint64) ([][]string, sweep.PointRecord, error) {
	pt := &pendingPoint{
		id:   pointID{sweep: sweepName, index: index},
		key:  p.Key,
		seed: seed,
		done: make(chan pointResult, 1),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, sweep.PointRecord{}, fmt.Errorf("cluster: coordinator closed")
	}
	if prev, ok := c.byID[pt.id]; ok && !prev.completed && !prev.abandoned {
		c.mu.Unlock()
		return nil, sweep.PointRecord{}, fmt.Errorf("cluster: point %s/%d already pending", sweepName, index)
	}
	c.byID[pt.id] = pt
	c.queue = append(c.queue, pt)
	c.gPending.SetInt(int64(len(c.queue)))
	c.mu.Unlock()

	select {
	case res := <-pt.done:
		return res.rows, res.rec, res.err
	case <-ctx.Done():
		c.mu.Lock()
		pt.abandoned = true
		for i, q := range c.queue {
			if q == pt {
				c.queue = append(c.queue[:i], c.queue[i+1:]...)
				break
			}
		}
		c.gPending.SetInt(int64(len(c.queue)))
		c.mu.Unlock()
		return nil, sweep.PointRecord{}, ctx.Err()
	}
}

// Finish marks the run complete: subsequent lease requests receive Done
// and connected workers exit cleanly. Call it after the experiment's
// sweeps have all returned.
func (c *Coordinator) Finish() {
	c.mu.Lock()
	c.finished = true
	c.mu.Unlock()
}

// Close shuts the coordinator down: stops accepting, disconnects every
// worker and waits for the connection goroutines to drain.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]net.Conn, 0, len(c.workers))
	for _, w := range c.workers {
		conns = append(conns, w.conn)
	}
	c.mu.Unlock()
	close(c.stopc)
	err := c.ln.Close()
	for _, conn := range conns {
		conn.Close()
	}
	c.wg.Wait()
	return err
}

// Stats is a snapshot of the coordinator's lease accounting.
type Stats struct {
	Granted     int64
	Expired     int64
	Reclaimed   int64
	Completed   int64
	Duplicates  int64
	Registered  int64
	WorkersLive int
	Pending     int
}

// Stats returns the current lease accounting.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	live, pending := len(c.workers), len(c.queue)
	c.mu.Unlock()
	return Stats{
		Granted:     c.ctrGranted.Value(),
		Expired:     c.ctrExpired.Value(),
		Reclaimed:   c.ctrReclaimed.Value(),
		Completed:   c.ctrCompleted.Value(),
		Duplicates:  c.ctrDuplicate.Value(),
		Registered:  c.ctrRegistered.Value(),
		WorkersLive: live,
		Pending:     pending,
	}
}

// WorkerManifests returns the per-worker partial manifests accumulated
// for the named sweep, in worker-name order.
func (c *Coordinator) WorkerManifests(sweepName string) []sweep.SweepManifest {
	c.mu.Lock()
	defer c.mu.Unlock()
	byWorker := c.partials[sweepName]
	names := make([]string, 0, len(byWorker))
	for n := range byWorker {
		names = append(names, n)
	}
	// Insertion order is map order; sort for stable output.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := make([]sweep.SweepManifest, 0, len(names))
	for _, n := range names {
		out = append(out, *byWorker[n])
	}
	return out
}

// MergedManifest merges the named sweep's per-worker partials
// (sweep.MergeManifests): the distributed run's manifest, canonically
// equal to a serial run's.
func (c *Coordinator) MergedManifest(sweepName string) (sweep.SweepManifest, error) {
	parts := c.WorkerManifests(sweepName)
	if len(parts) == 0 {
		return sweep.SweepManifest{}, fmt.Errorf("cluster: no results recorded for sweep %q", sweepName)
	}
	return sweep.MergeManifests(parts...)
}

// acceptLoop admits workers until Close. A failed registration rejects
// one connection and keeps listening — a buggy client can never take the
// coordinator down (same resilience contract as the wire emulator).
func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.stopc:
				return
			default:
			}
			c.logf("accept: %v", err)
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleConn(conn)
		}()
	}
}

// handleConn registers one worker and serves its frames until error,
// disconnect or Close; on exit its outstanding leases are reclaimed.
func (c *Coordinator) handleConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)

	conn.SetReadDeadline(time.Now().Add(registerTimeout))
	t, payload, err := ReadFrame(br)
	if err != nil || t != FrameRegister {
		writeMsg(conn, FrameError, ErrorMsg{Msg: "expected register frame"})
		return
	}
	var reg RegisterMsg
	if err := decodeMsg(t, payload, &reg); err != nil {
		writeMsg(conn, FrameError, ErrorMsg{Msg: err.Error()})
		return
	}
	if reg.Version != ProtoVersion {
		writeMsg(conn, FrameError, ErrorMsg{Msg: fmt.Sprintf("protocol version %d, want %d", reg.Version, ProtoVersion)})
		return
	}
	if reg.Worker == "" {
		writeMsg(conn, FrameError, ErrorMsg{Msg: "empty worker name"})
		return
	}
	w := &workerConn{name: reg.Worker, id: reg.ID, env: reg.Env, conn: conn}
	c.mu.Lock()
	if _, dup := c.workers[w.name]; dup {
		c.mu.Unlock()
		writeMsg(conn, FrameError, ErrorMsg{Msg: fmt.Sprintf("worker %q already registered", w.name)})
		return
	}
	c.workers[w.name] = w
	c.gWorkers.SetInt(int64(len(c.workers)))
	c.mu.Unlock()
	c.ctrRegistered.Inc()
	c.logf("worker %s registered (id %d)", w.name, w.id)

	welcome := WelcomeMsg{
		Version:        ProtoVersion,
		Spec:           c.cfg.Spec,
		RootSeed:       c.cfg.RootSeed,
		SpecHash:       c.cfg.SpecHash,
		LeaseTTLMillis: c.cfg.LeaseTTL.Milliseconds(),
	}
	if err := writeMsg(conn, FrameWelcome, welcome); err != nil {
		c.dropWorker(w, "welcome write failed")
		return
	}

	conn.SetReadDeadline(time.Time{})
	for {
		t, payload, err := ReadFrame(br)
		if err != nil {
			c.dropWorker(w, fmt.Sprintf("connection lost: %v", err))
			return
		}
		switch t {
		case FrameLeaseReq:
			var req LeaseReqMsg
			if err := decodeMsg(t, payload, &req); err != nil {
				writeMsg(conn, FrameError, ErrorMsg{Msg: err.Error()})
				c.dropWorker(w, err.Error())
				return
			}
			if c.cfg.SpecHash != "" && req.SpecHash != "" && req.SpecHash != c.cfg.SpecHash {
				msg := fmt.Sprintf("spec hash %s does not match coordinator %s", req.SpecHash, c.cfg.SpecHash)
				writeMsg(conn, FrameError, ErrorMsg{Msg: msg})
				c.dropWorker(w, msg)
				return
			}
			if err := c.grantLease(w); err != nil {
				c.dropWorker(w, err.Error())
				return
			}
		case FrameHeartbeat:
			var hb HeartbeatMsg
			if err := decodeMsg(t, payload, &hb); err != nil {
				continue // malformed heartbeat: the lease just ages
			}
			c.extendLease(w.name, pointID{sweep: hb.Sweep, index: hb.Index})
		case FrameResult:
			var res ResultMsg
			if err := decodeMsg(t, payload, &res); err != nil {
				writeMsg(conn, FrameError, ErrorMsg{Msg: err.Error()})
				c.dropWorker(w, err.Error())
				return
			}
			if err := c.handleResult(w, &res); err != nil {
				writeMsg(conn, FrameError, ErrorMsg{Msg: err.Error()})
				c.dropWorker(w, err.Error())
				return
			}
		case FrameError:
			var em ErrorMsg
			decodeMsg(t, payload, &em)
			c.dropWorker(w, "worker error: "+em.Msg)
			return
		default:
			writeMsg(conn, FrameError, ErrorMsg{Msg: "unexpected " + t.String() + " frame"})
			c.dropWorker(w, "unexpected "+t.String()+" frame")
			return
		}
	}
}

// grantLease answers one lease request: a Lease if a point is leasable,
// Done if the run is finished, Wait otherwise.
func (c *Coordinator) grantLease(w *workerConn) error {
	c.mu.Lock()
	var pt *pendingPoint
	for len(c.queue) > 0 {
		cand := c.queue[0]
		c.queue = c.queue[1:]
		if cand.completed || cand.abandoned {
			continue
		}
		pt = cand
		break
	}
	c.gPending.SetInt(int64(len(c.queue)))
	if pt == nil {
		finished := c.finished
		completed := int(c.ctrCompleted.Value())
		c.mu.Unlock()
		if finished {
			return writeMsg(w.conn, FrameDone, DoneMsg{Completed: completed})
		}
		retry := c.cfg.LeaseTTL / 8
		if retry < 10*time.Millisecond {
			retry = 10 * time.Millisecond
		}
		if retry > time.Second {
			retry = time.Second
		}
		return writeMsg(w.conn, FrameWait, WaitMsg{RetryMillis: retry.Milliseconds()})
	}
	now := time.Now()
	pt.leasedTo = w.name
	pt.deadline = now.Add(c.cfg.LeaseTTL)
	pt.hard = now.Add(c.cfg.MaxLease)
	c.mu.Unlock()
	c.ctrGranted.Inc()
	return writeMsg(w.conn, FrameLease, LeaseMsg{
		Sweep:     pt.id.sweep,
		Index:     pt.id.index,
		Key:       pt.key,
		Seed:      pt.seed,
		TTLMillis: c.cfg.LeaseTTL.Milliseconds(),
	})
}

// extendLease rolls a lease deadline forward on heartbeat, capped by the
// hard (zero-progress) deadline.
func (c *Coordinator) extendLease(worker string, id pointID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pt := c.byID[id]
	if pt == nil || pt.completed || pt.leasedTo != worker {
		return
	}
	d := time.Now().Add(c.cfg.LeaseTTL)
	if d.After(pt.hard) {
		d = pt.hard
	}
	pt.deadline = d
}

// handleResult completes a point: first result wins (duplicates from
// reclaimed leases are counted and dropped — determinism makes them
// interchangeable), the record is stamped with the worker's name, the
// worker's partial manifest grows, and any lost-worker health condition
// whose last outstanding point this was clears.
func (c *Coordinator) handleResult(w *workerConn, res *ResultMsg) error {
	id := pointID{sweep: res.Sweep, index: res.Index}
	c.mu.Lock()
	pt := c.byID[id]
	if pt == nil || pt.completed || pt.abandoned {
		c.mu.Unlock()
		c.ctrDuplicate.Inc()
		return nil
	}
	if res.Err == "" && res.Record.Key != pt.key {
		c.mu.Unlock()
		return fmt.Errorf("result for %s/%d carries key %q, want %q (version skew?)",
			id.sweep, id.index, res.Record.Key, pt.key)
	}
	pt.completed = true
	pt.leasedTo = ""
	rec := res.Record
	rec.Worker = w.name
	rec.Index = id.index

	// Grow the worker's partial manifest for this sweep.
	if res.Err == "" {
		byWorker := c.partials[id.sweep]
		if byWorker == nil {
			byWorker = make(map[string]*sweep.SweepManifest)
			c.partials[id.sweep] = byWorker
		}
		part := byWorker[w.name]
		if part == nil {
			part = &sweep.SweepManifest{
				Name:     id.sweep,
				RootSeed: c.cfg.RootSeed,
				Parallel: 1,
				Workers:  []sweep.WorkerRun{{Worker: w.name, Env: w.env}},
			}
			byWorker[w.name] = part
		}
		part.Points = append(part.Points, rec)
		part.Workers[0].Points++
		part.Workers[0].WallNS += rec.WallNS
		if rec.Cached {
			part.CacheHit++
			part.Workers[0].CacheHits++
		}
	}

	// This point may have been the last outstanding debt of a lost
	// worker: clear its health condition when its set drains.
	for name, set := range c.lost {
		if _, ok := set[id]; ok {
			delete(set, id)
			if len(set) == 0 {
				delete(c.lost, name)
				c.cfg.Health.ClearCondition("cluster/worker/" + name)
			}
		}
	}
	c.mu.Unlock()

	c.ctrCompleted.Inc()
	var deliver pointResult
	if res.Err != "" {
		rec.Err = res.Err
		deliver = pointResult{rec: rec, err: fmt.Errorf("worker %s: %s", w.name, res.Err)}
	} else {
		deliver = pointResult{rows: res.Rows, rec: rec}
	}
	pt.done <- deliver
	return nil
}

// dropWorker deregisters a worker and reclaims its outstanding leases.
// Reclaimed points re-enter the queue for other workers (at-least-once);
// a health condition marks the worker lost until its abandoned points
// complete.
func (c *Coordinator) dropWorker(w *workerConn, reason string) {
	c.mu.Lock()
	if c.workers[w.name] != w {
		c.mu.Unlock()
		return
	}
	delete(c.workers, w.name)
	c.gWorkers.SetInt(int64(len(c.workers)))
	var reclaimed int
	for id, pt := range c.byID {
		if pt.leasedTo == w.name && !pt.completed && !pt.abandoned {
			pt.leasedTo = ""
			c.queue = append(c.queue, pt)
			reclaimed++
			if c.lost[w.name] == nil {
				c.lost[w.name] = make(map[pointID]struct{})
			}
			c.lost[w.name][id] = struct{}{}
		}
	}
	c.gPending.SetInt(int64(len(c.queue)))
	// Counter and health condition must land before c.mu is released:
	// once released, another worker can lease, run and complete the
	// reclaimed point — and handleResult's ClearCondition must observe
	// the condition as already set.
	if reclaimed > 0 {
		c.ctrReclaimed.Add(int64(reclaimed))
		if !c.closed {
			c.cfg.Health.SetCondition("cluster/worker/"+w.name,
				fmt.Sprintf("%s with %d leased point(s); reclaimed", reason, reclaimed))
		}
	}
	c.mu.Unlock()
	c.logf("worker %s dropped (%s), %d lease(s) reclaimed", w.name, reason, reclaimed)
}

// reclaimLoop expires leases whose deadline (no heartbeat) or hard cap
// (no progress) passed, returning their points to the queue.
func (c *Coordinator) reclaimLoop() {
	defer c.wg.Done()
	tick := c.cfg.LeaseTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.stopc:
			return
		case now := <-t.C:
			type expiry struct {
				id     pointID
				worker string
				why    string
			}
			var expired []expiry
			c.mu.Lock()
			for id, pt := range c.byID {
				if pt.leasedTo == "" || pt.completed || pt.abandoned {
					continue
				}
				if now.After(pt.deadline) || now.After(pt.hard) {
					why := "lease TTL expired (no heartbeat)"
					if now.After(pt.hard) {
						why = "zero progress: hard lease cap reached"
					}
					expired = append(expired, expiry{id: id, worker: pt.leasedTo, why: why})
					if c.lost[pt.leasedTo] == nil {
						c.lost[pt.leasedTo] = make(map[pointID]struct{})
					}
					c.lost[pt.leasedTo][id] = struct{}{}
					// As in dropWorker: counters and the health condition
					// must precede the point's return to the queue
					// becoming visible outside c.mu.
					c.ctrExpired.Inc()
					c.ctrReclaimed.Inc()
					c.cfg.Health.SetCondition("cluster/worker/"+pt.leasedTo,
						fmt.Sprintf("%s for point %s/%d; reclaimed", why, id.sweep, id.index))
					pt.leasedTo = ""
					pt.deadline = time.Time{}
					c.queue = append(c.queue, pt)
				}
			}
			c.gPending.SetInt(int64(len(c.queue)))
			c.mu.Unlock()
			for _, e := range expired {
				c.logf("lease %s/%d held by %s reclaimed: %s", e.id.sweep, e.id.index, e.worker, e.why)
			}
		}
	}
}
