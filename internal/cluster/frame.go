// Package cluster turns the experiment-sweep engine into a multi-process
// fault-tolerant job runner: a coordinator leases sweep points to worker
// processes over TCP, reclaims leases when workers die or stop making
// progress, and merges per-worker results into output byte-identical to
// a serial run at the same seed.
//
// The design leans on three properties internal/sweep already has:
//
//  1. Determinism. Every point runs on the private RNG substream
//     rng.PointSeed(rootSeed, pointIndex), so a point computes the same
//     rows on any worker, any number of times. At-least-once delivery is
//     therefore safe: a reclaimed-and-re-executed point and a late
//     duplicate result are bitwise interchangeable, and the coordinator
//     just keeps the first.
//  2. Content addressing. Completed points live in the on-disk cache
//     under Identity.Hash(); when coordinator and workers share a cache
//     directory it becomes the shared result store — a point computed by
//     a crashed worker's earlier run replays instead of recomputing.
//  3. Manifests. Each result carries its PointRecord; the coordinator
//     accumulates per-worker partial manifests and merges them
//     (sweep.MergeManifests) into the serial manifest's canonical form.
//
// The protocol mirrors internal/wire's framing discipline: length-
// prefixed frames, a defensive size bound, and a decoder that rejects
// truncated, oversized or type-corrupted frames cleanly (fuzzed like the
// wire decoder). Payloads are JSON — the control plane moves a few
// frames per point, so debuggability wins over density.
//
// Frame flow:
//
//	worker                          coordinator
//	  | -- Register{name,id,env} -->  |  validate, admit
//	  | <-- Welcome{spec,seed,hash} --|
//	  | -- LeaseReq{spec_hash} ---->  |  pop pending point
//	  | <-- Lease{sweep,idx,seed,ttl}-|  (or Wait / Done)
//	  | -- Heartbeat{sweep,idx} --->  |  extend lease (while running)
//	  | -- Result{rows,record} ---->  |  complete point, reclaim credit
//	  | -- LeaseReq ... ---------->   |
//
// Lease state machine (per point):
//
//	PENDING --grant--> LEASED --result--> DONE
//	   ^                  |
//	   |   expiry (TTL or hard cap) / worker connection lost
//	   +------------------+   (reclaimed, at-least-once)
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"sirius/internal/sweep"
)

// ProtoVersion is the coordinator/worker protocol version. Register and
// Welcome both carry it; either side rejects a mismatch.
const ProtoVersion = 1

// frameHeader is u32 payload length | u8 frame type.
const frameHeader = 5

// MaxFrame bounds decoded frames defensively. Result frames carry a
// point's full row set, so the bound is generous compared to
// internal/wire's cell frames — but still finite: a corrupted length
// field must never allocate unbounded memory.
const MaxFrame = 16 << 20

// FrameType tags a protocol frame.
type FrameType uint8

// Protocol frame types. The decoder rejects anything outside
// [FrameRegister, FrameError].
const (
	FrameRegister  FrameType = iota + 1 // worker -> coordinator: introduce itself
	FrameWelcome                        // coordinator -> worker: spec, root seed, spec hash
	FrameLeaseReq                       // worker -> coordinator: request a point lease
	FrameLease                          // coordinator -> worker: a leased point
	FrameWait                           // coordinator -> worker: nothing leasable, retry later
	FrameDone                           // coordinator -> worker: sweep complete, disconnect
	FrameResult                         // worker -> coordinator: a completed point
	FrameHeartbeat                      // worker -> coordinator: still computing, extend lease
	FrameError                          // either direction: fatal protocol error, then close
)

// String names a frame type for errors and logs.
func (t FrameType) String() string {
	switch t {
	case FrameRegister:
		return "register"
	case FrameWelcome:
		return "welcome"
	case FrameLeaseReq:
		return "lease-req"
	case FrameLease:
		return "lease"
	case FrameWait:
		return "wait"
	case FrameDone:
		return "done"
	case FrameResult:
		return "result"
	case FrameHeartbeat:
		return "heartbeat"
	case FrameError:
		return "error"
	}
	return fmt.Sprintf("type-%d", uint8(t))
}

// WriteFrame writes one typed frame.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("cluster: %s frame of %d bytes exceeds limit", t, len(payload))
	}
	var h [frameHeader]byte
	binary.BigEndian.PutUint32(h[:4], uint32(len(payload)))
	h[4] = uint8(t)
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one typed frame, rejecting oversized lengths and
// unknown frame types before reading any payload byte.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var h [frameHeader]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(h[:4])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("cluster: frame of %d bytes exceeds limit", n)
	}
	t := FrameType(h[4])
	if t < FrameRegister || t > FrameError {
		return 0, nil, fmt.Errorf("cluster: unknown frame type %d", h[4])
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return t, buf, nil
}

// writeMsg marshals v and writes it as a frame of type t.
func writeMsg(w io.Writer, t FrameType, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("cluster: encode %s: %w", t, err)
	}
	return WriteFrame(w, t, payload)
}

// decodeMsg unmarshals a frame payload, labeling errors with the type.
func decodeMsg(t FrameType, payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("cluster: bad %s payload: %w", t, err)
	}
	return nil
}

// RegisterMsg introduces a worker to the coordinator.
type RegisterMsg struct {
	Version int    `json:"version"`
	Worker  string `json:"worker"`
	// ID is the worker's index in fault-plan node space (internal/fault
	// Crash/Stall events address workers by this).
	ID  int           `json:"id"`
	Env *sweep.RunEnv `json:"env,omitempty"`
}

// WelcomeMsg is the coordinator's reply to a valid registration.
type WelcomeMsg struct {
	Version int `json:"version"`
	// Spec is an opaque experiment description the embedding command
	// interprets to expand the same point set the coordinator holds
	// (cmd/siriussim encodes experiment name, scale, seed and loads).
	Spec     json.RawMessage `json:"spec,omitempty"`
	RootSeed uint64          `json:"root_seed"`
	// SpecHash content-addresses the coordinator's expanded point set
	// (HashPoints); a worker whose local expansion hashes differently
	// must abort rather than compute wrong points.
	SpecHash       string `json:"spec_hash,omitempty"`
	LeaseTTLMillis int64  `json:"lease_ttl_ms"`
}

// LeaseReqMsg asks for one point lease. The worker echoes the spec hash
// it verified so the coordinator can double-check agreement.
type LeaseReqMsg struct {
	SpecHash string `json:"spec_hash,omitempty"`
}

// LeaseMsg grants one point. Key and Seed let the worker cross-check its
// local expansion before running (belt to SpecHash's suspenders).
type LeaseMsg struct {
	Sweep     string `json:"sweep"`
	Index     int    `json:"index"`
	Key       string `json:"key"`
	Seed      uint64 `json:"seed"`
	TTLMillis int64  `json:"ttl_ms"`
}

// WaitMsg tells a worker nothing is leasable right now.
type WaitMsg struct {
	RetryMillis int64 `json:"retry_ms"`
}

// DoneMsg tells a worker the run is complete and it should exit.
type DoneMsg struct {
	Completed int `json:"completed"`
}

// ResultMsg reports a completed (or failed) point.
type ResultMsg struct {
	Sweep  string            `json:"sweep"`
	Index  int               `json:"index"`
	Rows   [][]string        `json:"rows,omitempty"`
	Record sweep.PointRecord `json:"record"`
	// Err is a point execution failure (the experiment code errored);
	// protocol failures use FrameError instead.
	Err string `json:"error,omitempty"`
}

// HeartbeatMsg extends the lease on a point the worker is computing.
type HeartbeatMsg struct {
	Sweep string `json:"sweep"`
	Index int    `json:"index"`
}

// ErrorMsg is a fatal, human-readable protocol error; the sender closes
// the connection after writing it.
type ErrorMsg struct {
	Msg string `json:"msg"`
}
