package cluster

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"sirius/internal/fault"
	"sirius/internal/rng"
	"sirius/internal/sweep"
	"sirius/internal/telemetry"
)

// testPoints builds a deterministic point set: each point's rows are a
// pure function of (key, substream seed), so any worker — or a serial
// run — computes identical rows. delay, when positive, makes each
// point's execution take that long (cancellable), for lease-expiry
// choreography.
func testPoints(n int, delay time.Duration) []sweep.Point {
	pts := make([]sweep.Point, n)
	for i := range pts {
		key := fmt.Sprintf("load=%02d", i)
		pts[i] = sweep.Point{
			Key: key,
			Run: func(ctx context.Context, seed uint64) ([][]string, error) {
				if delay > 0 {
					select {
					case <-time.After(delay):
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				}
				r := rng.New(seed)
				return [][]string{{key, fmt.Sprint(r.Uint64()), fmt.Sprint(r.Uint64())}}, nil
			},
		}
	}
	return pts
}

// serialRun executes the point set on a plain single-process runner and
// returns its rows and manifest: the ground truth every cluster test
// compares against.
func serialRun(t *testing.T, name string, seed uint64, n int) ([][][]string, sweep.SweepManifest) {
	t.Helper()
	r := &sweep.Runner{Parallel: 1, RootSeed: seed}
	rows, err := r.Run(context.Background(), name, testPoints(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	return rows, r.Manifests()[0]
}

// startWorker dials and runs a worker against its own local expansion of
// the point set; the returned channel delivers Run's error.
func startWorker(ctx context.Context, t *testing.T, addr string, cfg WorkerConfig, pts map[string][]sweep.Point) <-chan error {
	t.Helper()
	errc := make(chan error, 1)
	go func() {
		w, err := Dial(addr, cfg)
		if err != nil {
			errc <- err
			return
		}
		errc <- w.Run(ctx, pts)
	}()
	return errc
}

// waitStats polls the coordinator until pred holds or the deadline
// passes.
func waitStats(t *testing.T, c *Coordinator, what string, pred func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if pred(c.Stats()) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; stats %+v", what, c.Stats())
}

// TestClusterMatchesSerial is the core acceptance test: a coordinator
// fanning a sweep out to three workers produces rows and a merged
// manifest identical (canonical form) to a serial run at the same seed.
func TestClusterMatchesSerial(t *testing.T) {
	const n, seed = 12, uint64(777)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	wantRows, wantMan := serialRun(t, "fig9", seed, n)

	reg := telemetry.NewRegistry()
	pmap := map[string][]sweep.Point{"fig9": testPoints(n, 0)}
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		RootSeed: seed,
		SpecHash: HashPoints(seed, pmap),
		LeaseTTL: 500 * time.Millisecond,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	var workers []<-chan error
	for i := 0; i < 3; i++ {
		workers = append(workers, startWorker(ctx, t, coord.Addr(), WorkerConfig{
			Name:     fmt.Sprintf("w%d", i),
			ID:       i,
			Runner:   &sweep.Runner{},
			Registry: reg,
		}, map[string][]sweep.Point{"fig9": testPoints(n, 0)}))
	}

	rc := &sweep.Runner{RootSeed: seed, Executor: coord}
	rows, err := rc.Run(ctx, "fig9", testPoints(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	coord.Finish()
	for i, ec := range workers {
		if err := <-ec; err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	if !reflect.DeepEqual(rows, wantRows) {
		t.Fatal("cluster rows differ from serial rows")
	}
	if got := rc.Manifests()[0].Canonical(); !reflect.DeepEqual(got, wantMan.Canonical()) {
		t.Fatalf("coordinator manifest diverges from serial\ngot:  %+v\nwant: %+v", got, wantMan.Canonical())
	}
	merged, err := coord.MergedManifest("fig9")
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Canonical(); !reflect.DeepEqual(got, wantMan.Canonical()) {
		t.Fatalf("merged worker manifest diverges from serial\ngot:  %+v\nwant: %+v", got, wantMan.Canonical())
	}
	total := 0
	for _, w := range merged.Workers {
		if w.Env == nil {
			t.Errorf("worker %s lost its RunEnv in the merge", w.Worker)
		}
		total += w.Points
	}
	if total != n {
		t.Errorf("worker provenance accounts for %d/%d points", total, n)
	}
	st := coord.Stats()
	if st.Completed != n || st.Granted != n || st.Reclaimed != 0 || st.Registered != 3 {
		t.Errorf("stats %+v, want completed=granted=%d reclaimed=0 registered=3", st, n)
	}
}

// TestWorkerCrashReclaim kills one worker with a fault plan on its first
// lease and checks the reclaim machinery end to end: the lease is
// reclaimed (observable in telemetry), surviving workers complete every
// point, output still matches serial, and /healthz degrades while the
// crashed worker's point is outstanding and recovers after.
func TestWorkerCrashReclaim(t *testing.T) {
	const n, seed = 8, uint64(4242)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	wantRows, wantMan := serialRun(t, "fig9", seed, n)

	reg := telemetry.NewRegistry()
	health := telemetry.NewHealth(0)
	pmap := map[string][]sweep.Point{"fig9": testPoints(n, 0)}
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		RootSeed: seed,
		SpecHash: HashPoints(seed, pmap),
		LeaseTTL: 500 * time.Millisecond,
		Registry: reg,
		Health:   health,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// The doomed worker registers first and crashes on its first lease
	// (fault-plan epoch 0), guaranteeing at least one reclaim.
	crashed := startWorker(ctx, t, coord.Addr(), WorkerConfig{
		Name:     "doomed",
		ID:       0,
		Runner:   &sweep.Runner{},
		Plan:     fault.KillPlan(0, 0, seed),
		Registry: reg,
	}, map[string][]sweep.Point{"fig9": testPoints(n, 0)})

	rc := &sweep.Runner{RootSeed: seed, Executor: coord}
	runErr := make(chan error, 1)
	var rows [][][]string
	go func() {
		var err error
		rows, err = rc.Run(ctx, "fig9", testPoints(n, 0))
		runErr <- err
	}()

	if err := <-crashed; !errors.Is(err, ErrCrashed) {
		t.Fatalf("doomed worker exited with %v, want ErrCrashed", err)
	}
	waitStats(t, coord, "crash reclaim", func(s Stats) bool { return s.Reclaimed >= 1 })

	// Only now start the survivors: the crashed lease must be re-granted
	// to one of them.
	var survivors []<-chan error
	for i := 1; i <= 2; i++ {
		survivors = append(survivors, startWorker(ctx, t, coord.Addr(), WorkerConfig{
			Name:     fmt.Sprintf("w%d", i),
			ID:       i,
			Runner:   &sweep.Runner{},
			Registry: reg,
		}, map[string][]sweep.Point{"fig9": testPoints(n, 0)}))
	}
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	coord.Finish()
	for i, ec := range survivors {
		if err := <-ec; err != nil {
			t.Fatalf("survivor %d: %v", i, err)
		}
	}

	if !reflect.DeepEqual(rows, wantRows) {
		t.Fatal("rows after crash+reclaim differ from serial rows")
	}
	if got := rc.Manifests()[0].Canonical(); !reflect.DeepEqual(got, wantMan.Canonical()) {
		t.Fatal("manifest after crash+reclaim diverges from serial")
	}
	st := coord.Stats()
	if st.Reclaimed < 1 {
		t.Errorf("reclaimed = %d, want >= 1", st.Reclaimed)
	}
	if st.Completed != n {
		t.Errorf("completed = %d, want %d", st.Completed, n)
	}
	if !health.SawFlap() {
		t.Error("health never degraded despite a crashed worker holding a lease")
	}
	if !health.Healthy() {
		t.Errorf("health still degraded after recovery: %+v", health.Status())
	}
	if reg.Snapshot().CounterTotal("sirius_cluster_leases_reclaimed_total") < 1 {
		t.Error("reclaim not visible in telemetry registry")
	}
}

// TestStallDuplicateResult scripts a stall fault: the worker takes a
// lease, goes silent (no heartbeats) and delivers the result only after
// the lease TTL has long expired. The coordinator must expire and
// reclaim the lease, let another worker complete the point, count the
// late delivery as a duplicate, and still produce serial-identical rows.
func TestStallDuplicateResult(t *testing.T) {
	const n, seed = 6, uint64(99)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	wantRows, _ := serialRun(t, "fig9", seed, n)

	reg := telemetry.NewRegistry()
	health := telemetry.NewHealth(0)
	pmap := map[string][]sweep.Point{"fig9": testPoints(n, 0)}
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		RootSeed: seed,
		SpecHash: HashPoints(seed, pmap),
		LeaseTTL: 100 * time.Millisecond,
		Registry: reg,
		Health:   health,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Stall the first lease: heartbeats stop and the result is delayed
	// 1.5s — far past the 100ms TTL.
	stallPlan := &fault.Plan{Seed: seed, Events: []fault.Event{
		{Kind: fault.Stall, Src: 0, Epoch: 0, Until: 1, DelayMicros: 1_500_000},
	}}
	stalled := startWorker(ctx, t, coord.Addr(), WorkerConfig{
		Name:     "sleeper",
		ID:       0,
		Runner:   &sweep.Runner{},
		Plan:     stallPlan,
		Registry: reg,
	}, map[string][]sweep.Point{"fig9": testPoints(n, 0)})

	rc := &sweep.Runner{RootSeed: seed, Executor: coord}
	runErr := make(chan error, 1)
	var rows [][][]string
	go func() {
		var err error
		rows, err = rc.Run(ctx, "fig9", testPoints(n, 0))
		runErr <- err
	}()
	// Wait for the sleeper to take its lease, then bring up the healthy
	// worker that will absorb the reclaimed point.
	waitStats(t, coord, "first lease", func(s Stats) bool { return s.Granted >= 1 })
	healthy := startWorker(ctx, t, coord.Addr(), WorkerConfig{
		Name:     "healthy",
		ID:       1,
		Runner:   &sweep.Runner{},
		Registry: reg,
	}, map[string][]sweep.Point{"fig9": testPoints(n, 0)})

	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	coord.Finish()
	if err := <-healthy; err != nil {
		t.Fatalf("healthy worker: %v", err)
	}
	if err := <-stalled; err != nil {
		t.Fatalf("stalled worker: %v", err)
	}

	if !reflect.DeepEqual(rows, wantRows) {
		t.Fatal("rows after stall differ from serial rows")
	}
	st := coord.Stats()
	if st.Expired < 1 {
		t.Errorf("expired = %d, want >= 1 (lease TTL should have fired)", st.Expired)
	}
	if st.Reclaimed < 1 {
		t.Errorf("reclaimed = %d, want >= 1", st.Reclaimed)
	}
	waitStats(t, coord, "duplicate result", func(s Stats) bool { return s.Duplicates >= 1 })
	if !health.SawFlap() {
		t.Error("health never degraded despite an expired lease")
	}
}

// TestZeroProgressHardCap pins the MaxLease guard: a worker that
// heartbeats diligently but never finishes its point loses the lease at
// the hard cap, and the sweep still completes via another worker.
func TestZeroProgressHardCap(t *testing.T) {
	const n, seed = 4, uint64(31337)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	wantRows, _ := serialRun(t, "fig9", seed, n)

	reg := telemetry.NewRegistry()
	pmap := map[string][]sweep.Point{"fig9": testPoints(n, 0)}
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		RootSeed: seed,
		SpecHash: HashPoints(seed, pmap),
		LeaseTTL: 100 * time.Millisecond,
		MaxLease: 300 * time.Millisecond,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// The "stuck" worker's local points take 5s each — it heartbeats the
	// whole time (no fault plan), so only the hard cap can reclaim. Its
	// point closures still produce correct rows if ever allowed to
	// finish; the test cancels them via ctx at the end instead.
	stuckCtx, stopStuck := context.WithCancel(ctx)
	defer stopStuck()
	stuck := startWorker(stuckCtx, t, coord.Addr(), WorkerConfig{
		Name:     "stuck",
		ID:       0,
		Runner:   &sweep.Runner{},
		Registry: reg,
	}, map[string][]sweep.Point{"fig9": testPoints(n, 5*time.Second)})

	rc := &sweep.Runner{RootSeed: seed, Executor: coord}
	runErr := make(chan error, 1)
	var rows [][][]string
	go func() {
		var err error
		rows, err = rc.Run(ctx, "fig9", testPoints(n, 0))
		runErr <- err
	}()
	waitStats(t, coord, "first lease", func(s Stats) bool { return s.Granted >= 1 })
	healthy := startWorker(ctx, t, coord.Addr(), WorkerConfig{
		Name:     "healthy",
		ID:       1,
		Runner:   &sweep.Runner{},
		Registry: reg,
	}, map[string][]sweep.Point{"fig9": testPoints(n, 0)})

	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	coord.Finish()
	if err := <-healthy; err != nil {
		t.Fatalf("healthy worker: %v", err)
	}
	// The stuck worker is still sleeping inside its first point; cancel
	// it and accept either a context error or a clean Done (if its sleep
	// happened to end first).
	stopStuck()
	if err := <-stuck; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("stuck worker: %v", err)
	}

	if !reflect.DeepEqual(rows, wantRows) {
		t.Fatal("rows after hard-cap reclaim differ from serial rows")
	}
	st := coord.Stats()
	if st.Expired < 1 {
		t.Errorf("expired = %d, want >= 1 (hard cap should have fired despite heartbeats)", st.Expired)
	}
	if st.Completed != n {
		t.Errorf("completed = %d, want %d", st.Completed, n)
	}
}

// TestSharedCacheResultStore pins the cache-as-result-store property in
// both directions: a worker sharing the serial run's cache directory
// replays every point (merged manifest shows n cache hits), and a
// coordinator with a warm local cache never leases at all.
func TestSharedCacheResultStore(t *testing.T) {
	const n, seed = 5, uint64(2020)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	dir := t.TempDir()

	// Warm the cache with a serial run.
	cache, err := sweep.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	sr := &sweep.Runner{Parallel: 1, RootSeed: seed, Cache: cache}
	wantRows, err := sr.Run(ctx, "fig9", testPoints(n, 0))
	if err != nil {
		t.Fatal(err)
	}

	// Direction 1: cold coordinator, worker with the warm cache — every
	// leased point replays from disk.
	reg := telemetry.NewRegistry()
	pmap := map[string][]sweep.Point{"fig9": testPoints(n, 0)}
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		RootSeed: seed, SpecHash: HashPoints(seed, pmap),
		LeaseTTL: 500 * time.Millisecond, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	wcache, err := sweep.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	wec := startWorker(ctx, t, coord.Addr(), WorkerConfig{
		Name: "warm", ID: 0, Runner: &sweep.Runner{Cache: wcache}, Registry: reg,
	}, map[string][]sweep.Point{"fig9": testPoints(n, 0)})
	rc := &sweep.Runner{RootSeed: seed, Executor: coord}
	rows, err := rc.Run(ctx, "fig9", testPoints(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	coord.Finish()
	if err := <-wec; err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, wantRows) {
		t.Fatal("worker cache replay rows differ from serial rows")
	}
	merged, err := coord.MergedManifest("fig9")
	if err != nil {
		t.Fatal(err)
	}
	if merged.CacheHit != n {
		t.Errorf("worker-side cache hits = %d, want %d", merged.CacheHit, n)
	}
	coord.Close()

	// Direction 2: coordinator runner holding the warm cache serves every
	// point locally — zero leases cross the wire.
	reg2 := telemetry.NewRegistry()
	coord2, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		RootSeed: seed, SpecHash: HashPoints(seed, pmap),
		LeaseTTL: 500 * time.Millisecond, Registry: reg2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	ccache, err := sweep.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	idle := startWorker(ctx, t, coord2.Addr(), WorkerConfig{
		Name: "idle", ID: 0, Runner: &sweep.Runner{}, Registry: reg2,
	}, map[string][]sweep.Point{"fig9": testPoints(n, 0)})
	rc2 := &sweep.Runner{RootSeed: seed, Executor: coord2, Cache: ccache}
	rows2, err := rc2.Run(ctx, "fig9", testPoints(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	coord2.Finish()
	if err := <-idle; err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows2, wantRows) {
		t.Fatal("coordinator cache replay rows differ from serial rows")
	}
	if st := coord2.Stats(); st.Granted != 0 {
		t.Errorf("granted = %d leases despite a fully warm coordinator cache", st.Granted)
	}
	if man := rc2.Manifests()[0]; man.CacheHit != n {
		t.Errorf("coordinator cache hits = %d, want %d", man.CacheHit, n)
	}
}

// TestProtocolRejects pins the coordinator's admission checks: wrong
// protocol version, duplicate worker names, skewed spec hashes at lease
// time, and a worker whose local point expansion hashes differently.
func TestProtocolRejects(t *testing.T) {
	const seed = uint64(7)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	reg := telemetry.NewRegistry()
	pmap := map[string][]sweep.Point{"fig9": testPoints(3, 0)}
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		RootSeed: seed, SpecHash: HashPoints(seed, pmap),
		LeaseTTL: 500 * time.Millisecond, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Wrong protocol version at register time.
	if _, _, err := rawExchange(t, coord.Addr(),
		frame{FrameRegister, RegisterMsg{Version: 99, Worker: "vskew"}}); err == nil ||
		!strings.Contains(err.Error(), "protocol version") {
		t.Errorf("version-skewed register: %v, want protocol version error", err)
	}
	// Empty worker name.
	if _, _, err := rawExchange(t, coord.Addr(),
		frame{FrameRegister, RegisterMsg{Version: ProtoVersion}}); err == nil ||
		!strings.Contains(err.Error(), "empty worker name") {
		t.Errorf("anonymous register: %v, want empty-name error", err)
	}
	// Spec-hash skew at lease-request time.
	if _, _, err := rawExchange(t, coord.Addr(),
		frame{FrameRegister, RegisterMsg{Version: ProtoVersion, Worker: "raw"}},
		frame{FrameLeaseReq, LeaseReqMsg{SpecHash: "deadbeefdeadbeef"}}); err == nil ||
		!strings.Contains(err.Error(), "spec hash") {
		t.Errorf("hash-skewed lease request: %v, want spec hash error", err)
	}

	// Duplicate worker name: second Dial with the same name is rejected.
	w1, err := Dial(coord.Addr(), WorkerConfig{Name: "twin", Runner: &sweep.Runner{}, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	if _, err := Dial(coord.Addr(), WorkerConfig{Name: "twin", Runner: &sweep.Runner{}, Registry: reg}); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate name accepted: %v", err)
	}

	// Worker-side hash check: a worker expanding a different point set
	// must abort before computing anything.
	w2, err := Dial(coord.Addr(), WorkerConfig{Name: "skewed", Runner: &sweep.Runner{}, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	err = w2.Run(ctx, map[string][]sweep.Point{"fig9": testPoints(7, 0)})
	if err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Errorf("skewed worker ran anyway: %v", err)
	}
}

// frame is one scripted client frame for rawExchange.
type frame struct {
	t FrameType
	v any
}

// rawExchange dials the coordinator as a hand-rolled client, sends the
// scripted frames and returns the first reply after the last send. A
// FrameError reply is returned as an error carrying the message.
func rawExchange(t *testing.T, addr string, frames ...frame) (FrameType, []byte, error) {
	t.Helper()
	conn, err := dialRaw(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var lastT FrameType
	var lastP []byte
	for i, f := range frames {
		if err := writeMsg(conn, f.t, f.v); err != nil {
			return 0, nil, err
		}
		// Every scripted frame here is one that elicits a reply
		// (register -> welcome/error, lease-req -> lease/wait/done/error).
		rt, payload, err := ReadFrame(conn)
		if err != nil {
			return 0, nil, fmt.Errorf("after frame %d: %w", i, err)
		}
		if rt == FrameError {
			var em ErrorMsg
			decodeMsg(rt, payload, &em)
			return rt, payload, errors.New(em.Msg)
		}
		lastT, lastP = rt, payload
	}
	return lastT, lastP, nil
}

// TestHashPoints pins the spec hash: stable across map iteration order,
// sensitive to root seed, point keys and point count.
func TestHashPoints(t *testing.T) {
	a := map[string][]sweep.Point{"fig9": testPoints(5, 0), "fig10": testPoints(3, 0)}
	b := map[string][]sweep.Point{"fig10": testPoints(3, 0), "fig9": testPoints(5, 0)}
	if HashPoints(1, a) != HashPoints(1, b) {
		t.Error("hash depends on map construction order")
	}
	if HashPoints(1, a) == HashPoints(2, a) {
		t.Error("hash ignores root seed")
	}
	c := map[string][]sweep.Point{"fig9": testPoints(6, 0), "fig10": testPoints(3, 0)}
	if HashPoints(1, a) == HashPoints(1, c) {
		t.Error("hash ignores point count")
	}
	d := map[string][]sweep.Point{"fig9": testPoints(5, 0), "fig10": testPoints(3, 0)}
	d["fig9"][2].Key = "load=xx"
	if HashPoints(1, a) == HashPoints(1, d) {
		t.Error("hash ignores point keys")
	}
}
