package cluster

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzClusterFrame checks the cluster framing decoder against arbitrary
// input, mirroring internal/wire's FuzzReadFrame: no panics, allocation
// bounded by MaxFrame, truncated/oversized/type-corrupted frames
// rejected cleanly, and every accepted frame re-encodes byte-identically.
func FuzzClusterFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, FrameLease, []byte(`{"sweep":"fig9","index":3,"key":"load=0.5","seed":42,"ttl_ms":10000}`))
	f.Add(seed.Bytes())
	// Empty-payload frame of each boundary type.
	var reg bytes.Buffer
	_ = WriteFrame(&reg, FrameRegister, nil)
	f.Add(reg.Bytes())
	var errf bytes.Buffer
	_ = WriteFrame(&errf, FrameError, []byte(`{"msg":"boom"}`))
	f.Add(errf.Bytes())
	// Truncated mid-header and mid-payload.
	f.Add(seed.Bytes()[:3])
	f.Add(seed.Bytes()[:frameHeader+4])
	// Unknown type byte (0 and past FrameError).
	zeroType := append([]byte(nil), seed.Bytes()...)
	zeroType[4] = 0
	f.Add(zeroType)
	badType := append([]byte(nil), seed.Bytes()...)
	badType[4] = uint8(FrameError) + 7
	f.Add(badType)
	// Length field just past the limit, and large-but-legal truncated.
	var over [frameHeader]byte
	binary.BigEndian.PutUint32(over[:4], MaxFrame+1)
	over[4] = uint8(FrameResult)
	f.Add(over[:])
	var big [frameHeader]byte
	binary.BigEndian.PutUint32(big[:4], 1<<20)
	big[4] = uint8(FrameResult)
	f.Add(big[:])
	// Header-corrupted variant of a valid frame: flipped length bytes.
	corrupted := append([]byte(nil), seed.Bytes()...)
	corrupted[0] ^= 0x80
	corrupted[3] ^= 0x01
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		ft, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if ft < FrameRegister || ft > FrameError {
			t.Fatalf("decoder accepted out-of-range frame type %d", ft)
		}
		if len(payload) > MaxFrame {
			t.Fatalf("decoder returned %d-byte payload past MaxFrame", len(payload))
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, ft, payload); err != nil {
			t.Fatal(err)
		}
		ft2, payload2, err := ReadFrame(&out)
		if err != nil && err != io.EOF {
			t.Fatalf("re-read: %v", err)
		}
		if ft2 != ft || !bytes.Equal(payload2, payload) {
			t.Fatal("frame round trip mismatch")
		}
	})
}
