package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sirius/internal/fault"
	"sirius/internal/rng"
	"sirius/internal/sweep"
	"sirius/internal/telemetry"
)

// ErrCrashed is returned by Worker.Run when a fault plan scripted this
// worker to crash: the connection is dropped abruptly, mid-lease, so the
// coordinator sees a dead worker and must reclaim.
var ErrCrashed = errors.New("cluster: worker crashed by fault plan")

// WorkerConfig configures a sweep worker.
type WorkerConfig struct {
	// Name identifies the worker to the coordinator (must be unique per
	// coordinator). Empty defaults to "worker-<ID>".
	Name string
	// ID is the worker's index in fault-plan node space.
	ID int
	// Runner executes leased points locally. Its RootSeed is overwritten
	// by the coordinator's; its Cache, if shared with the coordinator,
	// doubles as the shared result store.
	Runner *sweep.Runner
	// Plan, when non-nil, scripts chaos: a Crash event with Node == ID
	// crashes the worker on its (Epoch+1)-th lease (abrupt connection
	// close, no result); a Stall event with Src == ID makes the worker
	// stop heartbeating on that lease and sleep Delay before sending the
	// (by then reclaimed and duplicate) result.
	Plan *fault.Plan
	// Registry receives the worker's counters; nil uses telemetry.Default.
	Registry *telemetry.Registry
	// Log, when non-nil, receives one line per worker event.
	Log io.Writer
	// DialTimeout bounds the initial dial; <= 0 defaults to 10s.
	DialTimeout time.Duration
}

// Worker is a registered cluster worker: it leases points from a
// coordinator, executes them on its local Runner, and streams results
// back until the coordinator says Done.
type Worker struct {
	cfg     WorkerConfig
	conn    net.Conn
	br      *bufio.Reader
	wmu     sync.Mutex // serializes frame writes (heartbeats vs results)
	welcome WelcomeMsg

	ctrLeases  *telemetry.Counter
	ctrResults *telemetry.Counter

	// Completed counts points this worker finished (read after Run).
	Completed int
}

// Dial connects to a coordinator, registers and waits for the Welcome.
// The returned worker's Spec()/RootSeed() tell the caller what point set
// to expand before Run.
func Dial(addr string, cfg WorkerConfig) (*Worker, error) {
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("worker-%d", cfg.ID)
	}
	if cfg.Runner == nil {
		return nil, errors.New("cluster: worker needs a Runner")
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	w := &Worker{
		cfg:        cfg,
		conn:       conn,
		br:         bufio.NewReader(conn),
		ctrLeases:  cfg.Registry.Counter("sirius_cluster_worker_leases_total"),
		ctrResults: cfg.Registry.Counter("sirius_cluster_worker_results_total"),
	}
	reg := RegisterMsg{Version: ProtoVersion, Worker: cfg.Name, ID: cfg.ID, Env: sweep.CaptureEnv()}
	if err := writeMsg(conn, FrameRegister, reg); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: register: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(cfg.DialTimeout))
	t, payload, err := ReadFrame(w.br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: waiting for welcome: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	switch t {
	case FrameWelcome:
		if err := decodeMsg(t, payload, &w.welcome); err != nil {
			conn.Close()
			return nil, err
		}
	case FrameError:
		var em ErrorMsg
		decodeMsg(t, payload, &em)
		conn.Close()
		return nil, fmt.Errorf("cluster: coordinator rejected registration: %s", em.Msg)
	default:
		conn.Close()
		return nil, fmt.Errorf("cluster: expected welcome, got %s frame", t)
	}
	if w.welcome.Version != ProtoVersion {
		conn.Close()
		return nil, fmt.Errorf("cluster: coordinator speaks protocol %d, want %d", w.welcome.Version, ProtoVersion)
	}
	return w, nil
}

// Spec returns the coordinator's opaque experiment spec from the
// Welcome frame.
func (w *Worker) Spec() []byte { return w.welcome.Spec }

// RootSeed returns the coordinator's sweep root seed.
func (w *Worker) RootSeed() uint64 { return w.welcome.RootSeed }

// Close drops the connection.
func (w *Worker) Close() error { return w.conn.Close() }

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Log != nil {
		fmt.Fprintf(w.cfg.Log, "worker %s: "+format+"\n", append([]any{w.cfg.Name}, args...)...)
	}
}

// writeFrame serializes frame writes so the heartbeat goroutine and the
// lease loop never interleave bytes.
func (w *Worker) writeFrame(t FrameType, v any) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeMsg(w.conn, t, v)
}

// Run executes the lease loop against the locally-expanded point set
// until the coordinator reports Done. points must map every sweep name
// to the exact point slice the coordinator expanded; Run verifies the
// expansion against the coordinator's spec hash (HashPoints) and aborts
// on mismatch — a skewed worker must not compute wrong rows.
func (w *Worker) Run(ctx context.Context, points map[string][]sweep.Point) error {
	rn := w.cfg.Runner
	rn.RootSeed = w.welcome.RootSeed
	specHash := HashPoints(w.welcome.RootSeed, points)
	if w.welcome.SpecHash != "" && specHash != w.welcome.SpecHash {
		w.writeFrame(FrameError, ErrorMsg{Msg: fmt.Sprintf(
			"local point set hashes to %s, coordinator has %s", specHash, w.welcome.SpecHash)})
		w.conn.Close()
		return fmt.Errorf("cluster: point-set hash mismatch: local %s, coordinator %s (version or config skew)",
			specHash, w.welcome.SpecHash)
	}
	ttl := time.Duration(w.welcome.LeaseTTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	crashAt := -1
	if w.cfg.Plan != nil {
		crashAt = w.cfg.Plan.CrashEpoch(w.cfg.ID)
	}
	leaseSeq := 0 // k-th lease received; fault-plan "epoch" space

	for {
		if err := ctx.Err(); err != nil {
			w.conn.Close()
			return err
		}
		if err := w.writeFrame(FrameLeaseReq, LeaseReqMsg{SpecHash: specHash}); err != nil {
			return fmt.Errorf("cluster: lease request: %w", err)
		}
		t, payload, err := ReadFrame(w.br)
		if err != nil {
			return fmt.Errorf("cluster: reading lease reply: %w", err)
		}
		switch t {
		case FrameDone:
			var done DoneMsg
			decodeMsg(t, payload, &done)
			w.logf("done: coordinator reports %d point(s) complete, %d by this worker", done.Completed, w.Completed)
			w.conn.Close()
			return nil
		case FrameWait:
			var wait WaitMsg
			decodeMsg(t, payload, &wait)
			retry := time.Duration(wait.RetryMillis) * time.Millisecond
			if retry <= 0 {
				retry = 50 * time.Millisecond
			}
			select {
			case <-time.After(retry):
			case <-ctx.Done():
				w.conn.Close()
				return ctx.Err()
			}
			continue
		case FrameError:
			var em ErrorMsg
			decodeMsg(t, payload, &em)
			w.conn.Close()
			return fmt.Errorf("cluster: coordinator error: %s", em.Msg)
		case FrameLease:
			// handled below
		default:
			w.conn.Close()
			return fmt.Errorf("cluster: unexpected %s frame in lease loop", t)
		}

		var lease LeaseMsg
		if err := decodeMsg(t, payload, &lease); err != nil {
			w.conn.Close()
			return err
		}
		if crashAt >= 0 && leaseSeq >= crashAt {
			// Scripted fail-stop: die holding the lease. Abrupt close, no
			// error frame — the coordinator must detect and reclaim.
			w.logf("fault plan: crashing on lease %d (%s/%d)", leaseSeq, lease.Sweep, lease.Index)
			w.conn.Close()
			return ErrCrashed
		}
		if err := w.runLease(ctx, lease, ttl, leaseSeq, points); err != nil {
			w.conn.Close()
			return err
		}
		leaseSeq++
	}
}

// runLease validates, executes and reports one leased point,
// heartbeating while the computation runs.
func (w *Worker) runLease(ctx context.Context, lease LeaseMsg, ttl time.Duration, seq int, points map[string][]sweep.Point) error {
	ps := points[lease.Sweep]
	if lease.Index < 0 || lease.Index >= len(ps) {
		return fmt.Errorf("cluster: leased unknown point %s/%d (have %d points)", lease.Sweep, lease.Index, len(ps))
	}
	p := ps[lease.Index]
	if p.Key != lease.Key {
		return fmt.Errorf("cluster: lease %s/%d key %q, local expansion has %q (version skew)",
			lease.Sweep, lease.Index, lease.Key, p.Key)
	}
	if seed := rng.PointSeed(w.welcome.RootSeed, uint64(lease.Index)); seed != lease.Seed {
		return fmt.Errorf("cluster: lease %s/%d seed %d, local substream derives %d",
			lease.Sweep, lease.Index, lease.Seed, seed)
	}
	w.ctrLeases.Inc()
	w.logf("lease %d: %s/%d key=%s", seq, lease.Sweep, lease.Index, lease.Key)

	// A scripted stall silences heartbeats for this lease and delays the
	// result past the TTL, exercising expiry + duplicate handling.
	var stall time.Duration
	if w.cfg.Plan != nil {
		stall = w.cfg.Plan.StallDelay(w.cfg.ID, seq)
	}

	// Heartbeat at TTL/3 while the point computes (unless stalling).
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	if stall == 0 {
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			tick := time.NewTicker(ttl / 3)
			defer tick.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-tick.C:
					w.writeFrame(FrameHeartbeat, HeartbeatMsg{Sweep: lease.Sweep, Index: lease.Index})
				}
			}
		}()
	}

	rows, rec, err := w.cfg.Runner.ExecPoint(ctx, lease.Sweep, lease.Index, p)
	close(hbStop)
	hbWG.Wait()

	if stall > 0 {
		w.logf("fault plan: stalling %s on lease %d before result", stall, seq)
		select {
		case <-time.After(stall):
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	res := ResultMsg{Sweep: lease.Sweep, Index: lease.Index, Rows: rows, Record: rec}
	if err != nil {
		res.Err = err.Error()
		res.Rows = nil
	}
	if werr := w.writeFrame(FrameResult, res); werr != nil {
		return fmt.Errorf("cluster: sending result: %w", werr)
	}
	w.ctrResults.Inc()
	w.Completed++
	return nil
}
