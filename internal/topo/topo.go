// Package topo describes the physical topologies compared in the paper:
// the flat Sirius fabric (nodes → tunable transceivers → one layer of
// passive gratings) and the hierarchical folded-Clos electrically-switched
// network (ESN) used as the baseline.
package topo

import (
	"fmt"

	"sirius/internal/simtime"
)

// SpeedOfLightFiber is the propagation speed in optical fiber, ~2/3 c,
// i.e. almost exactly 5 ns per metre of round trip or 5 µs per km one way.
const SpeedOfLightFiber = 2.0e8 // m/s

// PropagationDelay returns the one-way fiber latency for a distance in
// metres.
func PropagationDelay(metres float64) simtime.Duration {
	return simtime.Duration(metres / SpeedOfLightFiber * float64(simtime.Second))
}

// Sirius describes a flat Sirius fabric.
//
// Nodes are partitioned into Groups = Nodes/GratingPorts groups of
// GratingPorts nodes. Grating (a,b) connects the transmit side of group a
// to the receive side of group b, so a node needs one uplink per
// destination group — Uplinks = Multiplicity × Groups — and the fabric
// needs Groups² × Multiplicity gratings (Fig. 5a shows the 4-node,
// 2-uplink, 2-port-grating instance).
type Sirius struct {
	Nodes        int
	GratingPorts int
	Multiplicity int          // uplinks per destination group (≥1; 2 = "2x uplinks")
	LinkRate     simtime.Rate // per-transceiver rate
	FiberM       []float64    // optional per-node distance to the grating layer (metres)
}

// NewSirius returns a fabric with the given shape and validates it.
func NewSirius(nodes, gratingPorts, multiplicity int, rate simtime.Rate) (*Sirius, error) {
	s := &Sirius{Nodes: nodes, GratingPorts: gratingPorts, Multiplicity: multiplicity, LinkRate: rate}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Validate checks the shape invariants.
func (s *Sirius) Validate() error {
	switch {
	case s.Nodes < 2:
		return fmt.Errorf("topo: need at least 2 nodes, have %d", s.Nodes)
	case s.GratingPorts < 1:
		return fmt.Errorf("topo: need at least 1 grating port")
	case s.Nodes%s.GratingPorts != 0:
		return fmt.Errorf("topo: nodes (%d) must be a multiple of grating ports (%d)", s.Nodes, s.GratingPorts)
	case s.Multiplicity < 1:
		return fmt.Errorf("topo: multiplicity must be >= 1")
	case s.LinkRate <= 0:
		return fmt.Errorf("topo: non-positive link rate")
	case s.FiberM != nil && len(s.FiberM) != s.Nodes:
		return fmt.Errorf("topo: fiber lengths (%d) do not match nodes (%d)", len(s.FiberM), s.Nodes)
	}
	return nil
}

// Groups returns the number of node groups.
func (s *Sirius) Groups() int { return s.Nodes / s.GratingPorts }

// Uplinks returns the number of tunable transceivers per node.
func (s *Sirius) Uplinks() int { return s.Groups() * s.Multiplicity }

// Gratings returns the number of gratings in the core.
func (s *Sirius) Gratings() int { return s.Groups() * s.Groups() * s.Multiplicity }

// Transceivers returns the total number of tunable transceivers.
func (s *Sirius) Transceivers() int { return s.Nodes * s.Uplinks() }

// Grating returns which grating uplink u of node i is physically connected
// to, and the input port it occupies on that grating.
func (s *Sirius) Grating(node, uplink int) (grating, port int) {
	s.checkNodeUplink(node, uplink)
	srcGroup := node / s.GratingPorts
	dstGroup := uplink % s.Groups()
	plane := uplink / s.Groups() // which multiplicity copy
	grating = (srcGroup*s.Groups()+dstGroup)*s.Multiplicity + plane
	port = node % s.GratingPorts
	return grating, port
}

// DestGroup returns the destination node group reachable through uplink u.
func (s *Sirius) DestGroup(uplink int) int {
	if uplink < 0 || uplink >= s.Uplinks() {
		panic(fmt.Sprintf("topo: uplink %d outside [0,%d)", uplink, s.Uplinks()))
	}
	return uplink % s.Groups()
}

// ReachableFrom returns the destination nodes reachable through uplink u
// (the output side of the grating it connects to).
func (s *Sirius) ReachableFrom(node, uplink int) []int {
	s.checkNodeUplink(node, uplink)
	g := s.DestGroup(uplink)
	out := make([]int, s.GratingPorts)
	for p := 0; p < s.GratingPorts; p++ {
		out[p] = g*s.GratingPorts + p
	}
	return out
}

// UplinkFor returns an uplink of src that reaches dst (the first plane).
func (s *Sirius) UplinkFor(src, dst int) int {
	if dst < 0 || dst >= s.Nodes {
		panic(fmt.Sprintf("topo: node %d outside [0,%d)", dst, s.Nodes))
	}
	return dst / s.GratingPorts
}

// NodeBandwidth returns the aggregate uplink bandwidth per node.
func (s *Sirius) NodeBandwidth() simtime.Rate {
	return s.LinkRate * simtime.Rate(s.Uplinks())
}

// PropagationTo returns the one-way delay from node i to the grating
// layer. With no fiber map configured it returns zero (co-located).
func (s *Sirius) PropagationTo(node int) simtime.Duration {
	if s.FiberM == nil {
		return 0
	}
	return PropagationDelay(s.FiberM[node])
}

func (s *Sirius) checkNodeUplink(node, uplink int) {
	if node < 0 || node >= s.Nodes {
		panic(fmt.Sprintf("topo: node %d outside [0,%d)", node, s.Nodes))
	}
	if uplink < 0 || uplink >= s.Uplinks() {
		panic(fmt.Sprintf("topo: uplink %d outside [0,%d)", uplink, s.Uplinks()))
	}
}

// Clos describes a folded-Clos (fat-tree style) electrically-switched
// network built from identical Radix-port switches, the topology the paper
// uses for its ESN baselines and its power/cost model.
type Clos struct {
	Hosts    int // endpoints (racks or servers) attached at the edge
	Radix    int // ports per switch
	PortRate simtime.Rate
	// Oversub is the oversubscription ratio at the aggregation tier:
	// 1 = non-blocking, 3 = the paper's 3:1 ESN-OSUB.
	Oversub int
}

// NewClos validates and returns a Clos description.
func NewClos(hosts, radix int, rate simtime.Rate, oversub int) (*Clos, error) {
	c := &Clos{Hosts: hosts, Radix: radix, PortRate: rate, Oversub: oversub}
	if hosts < 2 || radix < 2 || rate <= 0 || oversub < 1 {
		return nil, fmt.Errorf("topo: invalid Clos %+v", c)
	}
	return c, nil
}

// Layers returns the number of switch layers needed to connect Hosts
// endpoints non-blocking with Radix-port switches: one layer connects
// Radix hosts; each extra layer multiplies reach by Radix/2 (folded Clos).
func (c *Clos) Layers() int {
	if c.Hosts <= 2 {
		return 0 // direct fiber, no switch
	}
	layers := 1
	reach := c.Radix
	for reach < c.Hosts {
		reach *= c.Radix / 2
		layers++
	}
	return layers
}

// Switches returns the total switch count of a non-blocking folded Clos
// with L layers: hosts/radix edge switches; each subsequent tier needs
// hosts/radix switches as well (half the ports down, half up), except the
// top tier which needs half that (all ports down).
func (c *Clos) Switches() int {
	l := c.Layers()
	if l == 0 {
		return 0
	}
	perTier := (c.Hosts + c.Radix - 1) / c.Radix
	if l == 1 {
		return perTier
	}
	// Tiers 1..l-1 use hosts/(radix/2) switches... for the standard
	// folded Clos built from identical switches, tiers below the top have
	// hosts/(radix/2) switches; the top has hosts/radix.
	mid := (c.Hosts + c.Radix/2 - 1) / (c.Radix / 2)
	total := perTier // top tier
	for t := 1; t < l; t++ {
		total += mid
	}
	// Oversubscription trims the tiers above the edge proportionally.
	if c.Oversub > 1 {
		above := total - mid
		total = mid + above/c.Oversub
	}
	return total
}

// Transceivers returns the number of optical transceivers: two per
// inter-switch link plus one per host-facing port. Every end-to-end path
// in an L-layer Clos crosses up to 2L-1 switches and 2L fiber hops.
func (c *Clos) Transceivers() int {
	l := c.Layers()
	if l == 0 {
		return c.Hosts // direct host-to-host fiber: one transceiver each
	}
	// Each tier boundary carries hosts links upward (non-blocking), each
	// with a transceiver at both ends.
	interTier := c.Hosts * 2 * (l - 1)
	if c.Oversub > 1 {
		interTier /= c.Oversub
	}
	return c.Hosts + interTier
}

// BisectionBandwidth returns the bisection bandwidth of the fabric.
func (c *Clos) BisectionBandwidth() simtime.Rate {
	bw := simtime.Rate(c.Hosts/2) * c.PortRate
	if c.Oversub > 1 {
		bw /= simtime.Rate(c.Oversub)
	}
	return bw
}
