package topo

import (
	"testing"
	"testing/quick"

	"sirius/internal/simtime"
)

func TestSiriusFig5(t *testing.T) {
	// Fig. 5a: 4 nodes, 2-port gratings -> 2 groups, 2 uplinks each,
	// 4 gratings.
	s, err := NewSirius(4, 2, 1, 50*simtime.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if s.Groups() != 2 || s.Uplinks() != 2 || s.Gratings() != 4 {
		t.Fatalf("groups/uplinks/gratings = %d/%d/%d, want 2/2/4",
			s.Groups(), s.Uplinks(), s.Gratings())
	}
	if s.Transceivers() != 8 {
		t.Errorf("transceivers = %d, want 8", s.Transceivers())
	}
	// Node 0 reaches nodes {0,1} on uplink 0 and {2,3} on uplink 1.
	got := s.ReachableFrom(0, 0)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("ReachableFrom(0,0) = %v, want [0 1]", got)
	}
	got = s.ReachableFrom(0, 1)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("ReachableFrom(0,1) = %v, want [2 3]", got)
	}
}

func TestSiriusPaperScale(t *testing.T) {
	// §4.1: 128 racks with 8 uplinks use 16-port gratings.
	s, err := NewSirius(128, 16, 1, 50*simtime.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if s.Uplinks() != 8 {
		t.Errorf("uplinks = %d, want 8", s.Uplinks())
	}
	// §4.1: 4,096 racks with 16-port gratings need 256 uplinks.
	s2, err := NewSirius(4096, 16, 1, 50*simtime.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Uplinks() != 256 {
		t.Errorf("uplinks = %d, want 256", s2.Uplinks())
	}
	// §4.1: 100-port gratings with 256 uplinks connect 25,600 racks.
	s3, err := NewSirius(25600, 100, 1, 50*simtime.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Uplinks() != 256 {
		t.Errorf("uplinks = %d, want 256", s3.Uplinks())
	}
}

func TestSiriusMultiplicity(t *testing.T) {
	// Doubled uplinks for the VLB throughput compensation.
	s, err := NewSirius(16, 4, 2, 50*simtime.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if s.Uplinks() != 8 {
		t.Errorf("uplinks = %d, want 8", s.Uplinks())
	}
	if s.NodeBandwidth() != 400*simtime.Gbps {
		t.Errorf("node bandwidth = %v Gbps, want 400", s.NodeBandwidth().Gbit())
	}
	// Both planes of the same destination group reach the same nodes.
	a := s.ReachableFrom(3, 1)
	b := s.ReachableFrom(3, 5) // uplink 1 + groups(4) = second plane of group 1
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("planes reach different nodes: %v vs %v", a, b)
		}
	}
}

func TestGratingWiringConsistent(t *testing.T) {
	// Each grating input port is used by exactly one node uplink.
	f := func(nodesRaw, portsRaw uint8) bool {
		ports := int(portsRaw%8) + 1
		groups := int(nodesRaw%6) + 1
		nodes := ports * groups
		if nodes < 2 {
			return true
		}
		s, err := NewSirius(nodes, ports, 1, simtime.Gbps)
		if err != nil {
			return false
		}
		used := make(map[[2]int]bool) // (grating, port) -> used
		for n := 0; n < nodes; n++ {
			for u := 0; u < s.Uplinks(); u++ {
				g, p := s.Grating(n, u)
				if g < 0 || g >= s.Gratings() || p < 0 || p >= ports {
					return false
				}
				key := [2]int{g, p}
				if used[key] {
					return false
				}
				used[key] = true
			}
		}
		// All grating inputs used exactly once.
		return len(used) == s.Gratings()*ports
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUplinkForReaches(t *testing.T) {
	s, err := NewSirius(64, 8, 1, simtime.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 64; src += 7 {
		for dst := 0; dst < 64; dst++ {
			u := s.UplinkFor(src, dst)
			found := false
			for _, r := range s.ReachableFrom(src, u) {
				if r == dst {
					found = true
				}
			}
			if !found {
				t.Fatalf("uplink %d of node %d does not reach %d", u, src, dst)
			}
		}
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Sirius{
		{Nodes: 1, GratingPorts: 1, Multiplicity: 1, LinkRate: 1},
		{Nodes: 10, GratingPorts: 3, Multiplicity: 1, LinkRate: 1},
		{Nodes: 4, GratingPorts: 2, Multiplicity: 0, LinkRate: 1},
		{Nodes: 4, GratingPorts: 2, Multiplicity: 1, LinkRate: 0},
		{Nodes: 4, GratingPorts: 2, Multiplicity: 1, LinkRate: 1, FiberM: []float64{1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid topology validated", i)
		}
	}
}

func TestPropagation(t *testing.T) {
	// 500 m of fiber is 2.5 us one way (§4.2's worst-case detour figure
	// is one extra traversal of the datacenter span).
	if got := PropagationDelay(500); got != 2500*simtime.Nanosecond {
		t.Errorf("500m = %v, want 2.5us", got)
	}
	s, _ := NewSirius(4, 2, 1, simtime.Gbps)
	if s.PropagationTo(0) != 0 {
		t.Error("no fiber map should mean zero delay")
	}
	s.FiberM = []float64{100, 200, 300, 400}
	if s.PropagationTo(1) != PropagationDelay(200) {
		t.Error("wrong per-node delay")
	}
}

func TestClosLayersPaper(t *testing.T) {
	// Fig. 2a x-axis: 2 hosts = 0 layers, 64 = 1, 2K = 2, 65K = 3, 2M = 4,
	// with 64-port switches.
	cases := []struct {
		hosts, want int
	}{
		{2, 0}, {64, 1}, {2048, 2}, {65536, 3}, {2000000, 4},
	}
	for _, c := range cases {
		clos, err := NewClos(c.hosts, 64, 400*simtime.Gbps, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := clos.Layers(); got != c.want {
			t.Errorf("%d hosts: layers = %d, want %d", c.hosts, got, c.want)
		}
	}
}

func TestClosCounts(t *testing.T) {
	c, err := NewClos(64, 64, 400*simtime.Gbps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Switches() != 1 {
		t.Errorf("64 hosts on a 64-port switch = %d switches, want 1", c.Switches())
	}
	if c.Transceivers() != 64 {
		t.Errorf("transceivers = %d, want 64", c.Transceivers())
	}
	// A two-layer Clos has edge + spine and host*2 inter-tier transceivers.
	c2, _ := NewClos(2048, 64, 400*simtime.Gbps, 1)
	if c2.Layers() != 2 {
		t.Fatal("want 2 layers")
	}
	if c2.Transceivers() != 2048+2048*2 {
		t.Errorf("transceivers = %d, want %d", c2.Transceivers(), 2048*3)
	}
}

func TestClosOversubscription(t *testing.T) {
	nb, _ := NewClos(2048, 64, 400*simtime.Gbps, 1)
	os, _ := NewClos(2048, 64, 400*simtime.Gbps, 3)
	if os.BisectionBandwidth()*3 != nb.BisectionBandwidth() {
		t.Errorf("3:1 oversub bisection = %v, want third of %v",
			os.BisectionBandwidth(), nb.BisectionBandwidth())
	}
	if os.Transceivers() >= nb.Transceivers() {
		t.Error("oversubscribed fabric should use fewer transceivers")
	}
	if os.Switches() >= nb.Switches() {
		t.Error("oversubscribed fabric should use fewer switches")
	}
}

func TestClosInvalid(t *testing.T) {
	if _, err := NewClos(1, 64, simtime.Gbps, 1); err == nil {
		t.Error("1-host Clos validated")
	}
	if _, err := NewClos(64, 64, simtime.Gbps, 0); err == nil {
		t.Error("0 oversub validated")
	}
}

func TestNewSiriusRejectsInvalid(t *testing.T) {
	if _, err := NewSirius(10, 3, 1, simtime.Gbps); err == nil {
		t.Error("non-divisible topology accepted")
	}
}

func TestIndexPanics(t *testing.T) {
	s, _ := NewSirius(8, 4, 1, simtime.Gbps)
	for name, f := range map[string]func(){
		"DestGroup":     func() { s.DestGroup(99) },
		"UplinkFor dst": func() { s.UplinkFor(0, 99) },
		"Grating node":  func() { s.Grating(99, 0) },
		"Grating up":    func() { s.Grating(0, 99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
