// Package rack models the rack-based deployment's intra-rack tier
// (§4.1, §4.3): servers connect to an electrical rack switch whose
// uplinks carry the tunable transceivers. The request/grant protocol
// eliminates congestion in the optical core, so all that remains is a
// simple one-hop, credit-based flow control between each server and its
// rack switch (the paper points at the InfiniBand link-layer protocol) to
// keep the switch's LOCAL buffer from overflowing — making the whole
// path lossless.
//
// The model is slot-synchronous like the core simulator: per slot each
// server downlink can carry a fixed number of cells toward the switch if
// it holds credits, the switch's LOCAL buffer absorbs them (bounded), and
// the optical uplinks drain LOCAL at the fabric rate. Credits return to
// the server as its cells leave LOCAL. Intra-rack traffic is switched
// locally and never consumes LOCAL space.
package rack

import "fmt"

// Config shapes one rack.
type Config struct {
	// Servers attached to the switch.
	Servers int
	// DownlinkCellsPerSlot is each server link's capacity, in cells per
	// optical timeslot (e.g. a 100G server link against 50G channels
	// carries 2).
	DownlinkCellsPerSlot int
	// LocalCells is the LOCAL buffer capacity in cells.
	LocalCells int
	// UplinkCellsPerSlot is the optical drain rate of LOCAL (number of
	// uplink transceivers).
	UplinkCellsPerSlot int
	// CreditsPerServer bounds each server's share of LOCAL; 0 divides
	// LocalCells evenly.
	CreditsPerServer int
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Servers < 1:
		return fmt.Errorf("rack: need >= 1 server")
	case c.DownlinkCellsPerSlot < 1:
		return fmt.Errorf("rack: downlink must carry >= 1 cell/slot")
	case c.LocalCells < c.Servers:
		return fmt.Errorf("rack: LOCAL (%d cells) below one credit per server", c.LocalCells)
	case c.UplinkCellsPerSlot < 1:
		return fmt.Errorf("rack: need >= 1 uplink cell/slot")
	case c.CreditsPerServer < 0:
		return fmt.Errorf("rack: negative credits")
	}
	return nil
}

// Switch is the rack switch state.
type Switch struct {
	cfg Config

	credits []int // per server: credits in hand at the server
	backlog []int // per server: inter-rack cells waiting at the server NIC
	intra   []int // per server: intra-rack cells waiting at the server NIC

	local      int   // cells in LOCAL
	localOwner []int // FIFO of owning servers, for credit return order

	// Stats.
	peakLocal      int
	deliveredUp    int64 // cells handed to the optical fabric
	deliveredIntra int64 // cells switched within the rack
	stalls         int64 // send attempts blocked on credits
}

// New builds a rack switch.
func New(cfg Config) (*Switch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CreditsPerServer == 0 {
		cfg.CreditsPerServer = cfg.LocalCells / cfg.Servers
	}
	s := &Switch{
		cfg:     cfg,
		credits: make([]int, cfg.Servers),
		backlog: make([]int, cfg.Servers),
		intra:   make([]int, cfg.Servers),
	}
	for i := range s.credits {
		s.credits[i] = cfg.CreditsPerServer
	}
	return s, nil
}

// Offer enqueues cells at server sv: interRack cells head for the optical
// fabric through LOCAL, intraRack cells are switched locally.
func (s *Switch) Offer(sv, interRack, intraRack int) {
	if sv < 0 || sv >= s.cfg.Servers || interRack < 0 || intraRack < 0 {
		panic("rack: bad offer")
	}
	s.backlog[sv] += interRack
	s.intra[sv] += intraRack
}

// Step advances one optical timeslot and returns the number of cells
// handed to the fabric this slot.
func (s *Switch) Step() int {
	// 1. The optical uplinks drain LOCAL, returning credits to the
	// owners of the drained cells.
	drained := min(s.cfg.UplinkCellsPerSlot, s.local)
	for i := 0; i < drained; i++ {
		owner := s.localOwner[0]
		s.localOwner = s.localOwner[1:]
		s.credits[owner]++
		s.local--
	}
	s.deliveredUp += int64(drained)

	// 2. Each server downlink carries up to its per-slot budget:
	// intra-rack cells switch immediately (no LOCAL space needed);
	// inter-rack cells need a credit each.
	for sv := 0; sv < s.cfg.Servers; sv++ {
		budget := s.cfg.DownlinkCellsPerSlot
		for budget > 0 && s.intra[sv] > 0 {
			s.intra[sv]--
			s.deliveredIntra++
			budget--
		}
		for budget > 0 && s.backlog[sv] > 0 {
			if s.credits[sv] == 0 {
				s.stalls++
				break // lossless: the server holds the cell
			}
			s.credits[sv]--
			s.backlog[sv]--
			s.local++
			s.localOwner = append(s.localOwner, sv)
			budget--
		}
	}
	if s.local > s.peakLocal {
		s.peakLocal = s.local
	}
	if s.local > s.cfg.LocalCells {
		panic(fmt.Sprintf("rack: LOCAL overflow: %d > %d", s.local, s.cfg.LocalCells))
	}
	return drained
}

// Local returns the current LOCAL occupancy in cells.
func (s *Switch) Local() int { return s.local }

// PeakLocal returns the largest LOCAL occupancy observed.
func (s *Switch) PeakLocal() int { return s.peakLocal }

// Pending returns the inter-rack cells still waiting at server NICs.
func (s *Switch) Pending() int {
	total := 0
	for _, b := range s.backlog {
		total += b
	}
	return total
}

// DeliveredUp returns cells handed to the optical fabric so far.
func (s *Switch) DeliveredUp() int64 { return s.deliveredUp }

// DeliveredIntra returns cells switched within the rack so far.
func (s *Switch) DeliveredIntra() int64 { return s.deliveredIntra }

// Stalls returns how many sends were blocked waiting for credits —
// back-pressure doing its job rather than dropping.
func (s *Switch) Stalls() int64 { return s.stalls }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
