package rack

import (
	"testing"
	"testing/quick"

	"sirius/internal/rng"
)

func config() Config {
	return Config{
		Servers:              24,
		DownlinkCellsPerSlot: 2,
		LocalCells:           96,
		UplinkCellsPerSlot:   8,
	}
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Servers = 0 },
		func(c *Config) { c.DownlinkCellsPerSlot = 0 },
		func(c *Config) { c.LocalCells = 3 },
		func(c *Config) { c.UplinkCellsPerSlot = 0 },
		func(c *Config) { c.CreditsPerServer = -1 },
	}
	for i, mutate := range bad {
		c := config()
		mutate(&c)
		if _, err := New(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestLosslessUnderOverload(t *testing.T) {
	// Every server floods; LOCAL never exceeds its capacity (Step panics
	// if it would) and nothing is dropped — cells either move or wait.
	s, err := New(config())
	if err != nil {
		t.Fatal(err)
	}
	const perServer = 200
	for sv := 0; sv < 24; sv++ {
		s.Offer(sv, perServer, 0)
	}
	offered := int64(24 * perServer)
	for i := 0; i < 10000 && s.DeliveredUp() < offered; i++ {
		s.Step()
	}
	if s.DeliveredUp() != offered {
		t.Fatalf("delivered %d of %d", s.DeliveredUp(), offered)
	}
	if s.PeakLocal() > 96 {
		t.Errorf("LOCAL peaked at %d > 96", s.PeakLocal())
	}
	if s.Stalls() == 0 {
		t.Error("overload should have exercised credit back-pressure")
	}
}

func TestUplinkRateAchieved(t *testing.T) {
	// With ample demand the uplinks run at full rate: 8 cells per slot.
	s, err := New(config())
	if err != nil {
		t.Fatal(err)
	}
	for sv := 0; sv < 24; sv++ {
		s.Offer(sv, 1000, 0)
	}
	total := 0
	for i := 0; i < 100; i++ {
		total += s.Step()
	}
	// Slot 0 has an empty LOCAL; steady state from slot 2 on.
	if total < 8*97 {
		t.Errorf("drained %d cells in 100 slots, want near 800", total)
	}
}

func TestIntraRackBypassesLocal(t *testing.T) {
	s, err := New(config())
	if err != nil {
		t.Fatal(err)
	}
	s.Offer(3, 0, 50)
	for i := 0; i < 30; i++ {
		s.Step()
	}
	if s.DeliveredIntra() != 50 {
		t.Errorf("intra delivered %d of 50", s.DeliveredIntra())
	}
	if s.PeakLocal() != 0 {
		t.Errorf("intra-rack traffic touched LOCAL (peak %d)", s.PeakLocal())
	}
	if s.Stalls() != 0 {
		t.Error("intra-rack traffic needs no credits")
	}
}

func TestFairnessAcrossServers(t *testing.T) {
	// Per-server credits prevent one server from monopolizing LOCAL:
	// a quiet server that starts sending later still gets through at
	// its downlink rate.
	s, err := New(config())
	if err != nil {
		t.Fatal(err)
	}
	s.Offer(0, 10_000, 0) // hog
	for i := 0; i < 50; i++ {
		s.Step()
	}
	before := s.DeliveredUp()
	s.Offer(1, 20, 0) // latecomer
	for i := 0; i < 50; i++ {
		s.Step()
	}
	// The latecomer's 20 cells fit comfortably in 50 slots x 2/slot
	// downlink if credits flow back fairly: total delivered must cover
	// the hog's share plus all 20.
	if got := s.DeliveredUp() - before; got < 20 {
		t.Errorf("only %d cells moved after the latecomer arrived", got)
	}
	if s.Pending() > 10_000-30 {
		t.Error("hog made no progress")
	}
}

func TestCreditConservation(t *testing.T) {
	// Property: credits in hand + cells in LOCAL per server == initial
	// credits, at every step, under random load.
	f := func(seed uint64) bool {
		cfg := config()
		s, err := New(cfg)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		for step := 0; step < 400; step++ {
			if r.Float64() < 0.7 {
				s.Offer(r.Intn(cfg.Servers), r.Intn(5), r.Intn(3))
			}
			s.Step()
			total := s.local
			for sv := 0; sv < cfg.Servers; sv++ {
				total += s.credits[sv]
			}
			if total != cfg.Servers*(cfg.LocalCells/cfg.Servers) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDownlinkPacing(t *testing.T) {
	// A single server is limited by its downlink, not by credits.
	cfg := config()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Offer(0, 100, 0)
	for i := 0; i < 10; i++ {
		s.Step()
	}
	// 10 slots x 2 cells/slot = at most 20 cells accepted from the NIC.
	moved := 100 - s.Pending() // accepted into LOCAL or delivered
	if moved > 20 {
		t.Errorf("moved %d cells in 10 slots, downlink allows 20", moved)
	}
}

func TestOfferPanics(t *testing.T) {
	s, _ := New(config())
	defer func() {
		if recover() == nil {
			t.Error("bad Offer did not panic")
		}
	}()
	s.Offer(99, 1, 0)
}
