package schedule

import (
	"fmt"
	"testing"
)

// familyGrid builds every schedule family at one node count. The
// geometry knobs scale with n so each size exercises a different
// epoch/uplink shape: grating ports grow with n, the fractional rotor
// keeps an uplink count coprime with n (maximal epoch), and the
// degraded wrapper fails two spread-out nodes.
func familyGrid(t *testing.T, n int) []struct {
	name    string
	s       Schedule
	uniform bool // CheckUniformCoverage applies (not for Degraded)
} {
	t.Helper()
	ports := 4
	for ports*ports < n {
		ports *= 2 // 8→4, 64→8, 256→16
	}
	mustGrouped := func(m int) Schedule {
		g, err := NewGrouped(n, ports, m)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	mustRotor := func(u int) Schedule {
		r, err := NewRotor(n, u)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	degraded, err := NewDegraded(mustRotor(4), []int{1, n / 2})
	if err != nil {
		t.Fatal(err)
	}
	compact, _, err := Compact(mustRotor(4), []int{1, n / 2})
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name    string
		s       Schedule
		uniform bool
	}{
		{"grouped_m1", mustGrouped(1), true},
		{"grouped_m2", mustGrouped(2), true},
		{"rotor_even", mustRotor(4), true},
		{"rotor_frac", mustRotor(3), true},
		{"degraded", degraded, false},
		{"compact", compact, true},
	}
}

// TestFamilyProperties sweeps the defining schedule invariants across
// every family at n in {8, 64, 256}: contention freedom always, uniform
// coverage wherever it is promised (a Degraded schedule deliberately
// blanks failed slots, so only contention freedom survives there).
func TestFamilyProperties(t *testing.T) {
	for _, n := range []int{8, 64, 256} {
		for _, f := range familyGrid(t, n) {
			t.Run(fmt.Sprintf("%s/n%d", f.name, n), func(t *testing.T) {
				if err := CheckContentionFree(f.s); err != nil {
					t.Errorf("contention: %v", err)
				}
				if !f.uniform {
					return
				}
				if err := CheckUniformCoverage(f.s); err != nil {
					t.Errorf("coverage: %v", err)
				}
			})
		}
	}
}

// TestSlotForMatchesScan cross-checks every family's (possibly closed
// form) SlotFor against the brute-force ScanSlotFor over all ordered
// pairs: both must agree on whether a pair is ever connected, and a
// non-negative answer must name a slot that really reaches dst.
func TestSlotForMatchesScan(t *testing.T) {
	for _, n := range []int{8, 64, 256} {
		for _, f := range familyGrid(t, n) {
			t.Run(fmt.Sprintf("%s/n%d", f.name, n), func(t *testing.T) {
				for src := 0; src < f.s.Nodes(); src++ {
					for dst := 0; dst < f.s.Nodes(); dst++ {
						u, s := f.s.SlotFor(src, dst)
						su, ss := ScanSlotFor(f.s, src, dst)
						if (u < 0) != (su < 0) {
							t.Fatalf("pair (%d,%d): SlotFor (%d,%d) vs scan (%d,%d)",
								src, dst, u, s, su, ss)
						}
						if u < 0 {
							continue
						}
						if got := f.s.Dst(src, u, s); got != dst {
							t.Fatalf("pair (%d,%d): SlotFor (%d,%d) reaches %d", src, dst, u, s, got)
						}
					}
				}
			})
		}
	}
}
