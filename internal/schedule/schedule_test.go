package schedule

import (
	"testing"
	"testing/quick"

	"sirius/internal/optics"
)

func TestGroupedFig5(t *testing.T) {
	// The 4-node, 2-port-grating network of Fig. 5: epoch of two slots,
	// every pair (including self) connected once per epoch.
	g, err := NewGrouped(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Uplinks() != 2 || g.SlotsPerEpoch() != 2 || g.ConnectionsPerEpoch() != 1 {
		t.Fatalf("uplinks/slots/k = %d/%d/%d, want 2/2/1",
			g.Uplinks(), g.SlotsPerEpoch(), g.ConnectionsPerEpoch())
	}
	if err := CheckContentionFree(g); err != nil {
		t.Error(err)
	}
	if err := CheckUniformCoverage(g); err != nil {
		t.Error(err)
	}
	// Fig. 5b, read with nodes 0-indexed: source (node 0, uplink 0) sends
	// to node 0 in slot 0 (wavelength A = self) and node 1 in slot 1.
	if d := g.Dst(0, 0, 0); d != 0 {
		t.Errorf("Dst(0,0,0) = %d, want 0 (self slot)", d)
	}
	if d := g.Dst(0, 0, 1); d != 1 {
		t.Errorf("Dst(0,0,1) = %d, want 1", d)
	}
	if d := g.Dst(0, 1, 0); d != 2 {
		t.Errorf("Dst(0,1,0) = %d, want 2", d)
	}
}

func TestGroupedPaperScale(t *testing.T) {
	// 128 racks, 16-port gratings: 8 uplinks, 16-slot epoch — with 100 ns
	// slots that is the paper's 1.6 us epoch.
	g, err := NewGrouped(128, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Uplinks() != 8 || g.SlotsPerEpoch() != 16 {
		t.Fatalf("uplinks/slots = %d/%d, want 8/16", g.Uplinks(), g.SlotsPerEpoch())
	}
	if err := CheckContentionFree(g); err != nil {
		t.Error(err)
	}
	if err := CheckUniformCoverage(g); err != nil {
		t.Error(err)
	}
}

func TestGroupedProperties(t *testing.T) {
	f := func(groupsRaw, portsRaw, multRaw uint8) bool {
		groups := int(groupsRaw%5) + 1
		ports := int(portsRaw%7) + 1
		mult := int(multRaw%3) + 1
		nodes := groups * ports
		if nodes < 2 {
			return true
		}
		g, err := NewGrouped(nodes, ports, mult)
		if err != nil {
			return false
		}
		return CheckContentionFree(g) == nil && CheckUniformCoverage(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGroupedSlotForInverse(t *testing.T) {
	g, err := NewGrouped(64, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 64; src += 5 {
		for dst := 0; dst < 64; dst++ {
			u, s := g.SlotFor(src, dst)
			if got := g.Dst(src, u, s); got != dst {
				t.Fatalf("SlotFor(%d,%d) = (%d,%d) but Dst = %d", src, dst, u, s, got)
			}
		}
	}
}

func TestGroupedWavelengthLaserSharing(t *testing.T) {
	// §4.5: load-balanced routing lets all transceivers on a node use the
	// same wavelength at any timeslot, enabling laser sharing. In the
	// grouped schedule the wavelength depends only on (slot, plane).
	g, err := NewGrouped(64, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < g.SlotsPerEpoch(); slot++ {
		for plane := 0; plane < 2; plane++ {
			var want optics.Wavelength = -1
			for node := 0; node < 64; node++ {
				for u := plane * 8; u < (plane+1)*8; u++ {
					w := g.Wavelength(node, u, slot)
					if want == -1 {
						want = w
					}
					if w != want {
						t.Fatalf("slot %d plane %d: node %d uplink %d uses wavelength %d, others %d",
							slot, plane, node, u, w, want)
					}
				}
			}
		}
	}
}

func TestGroupedWavelengthMatchesAWGR(t *testing.T) {
	// The wavelength assignment must be consistent with physical cyclic
	// AWGR routing: if node i (input port i mod G) uses wavelength w, the
	// light must exit on output port dst mod G.
	g, err := NewGrouped(32, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	awgr := optics.NewAWGR(8, 6)
	for node := 0; node < 32; node++ {
		for u := 0; u < g.Uplinks(); u++ {
			for s := 0; s < g.SlotsPerEpoch(); s++ {
				w := g.Wavelength(node, u, s)
				dst := g.Dst(node, u, s)
				if got := awgr.Route(node%8, w); got != dst%8 {
					t.Fatalf("node %d uplink %d slot %d: AWGR routes to port %d, schedule says %d",
						node, u, s, got, dst%8)
				}
			}
		}
	}
}

func TestRotorBasics(t *testing.T) {
	r, err := NewRotor(128, 12) // the paper's 1.5x provisioning
	if err != nil {
		t.Fatal(err)
	}
	if r.SlotsPerEpoch() != 32 {
		t.Errorf("epoch = %d slots, want 32", r.SlotsPerEpoch())
	}
	if r.ConnectionsPerEpoch() != 3 {
		t.Errorf("k = %d, want 3", r.ConnectionsPerEpoch())
	}
	if err := CheckContentionFree(r); err != nil {
		t.Error(err)
	}
	if err := CheckUniformCoverage(r); err != nil {
		t.Error(err)
	}
}

func TestRotorProperties(t *testing.T) {
	f := func(nRaw, uRaw uint8) bool {
		n := int(nRaw%60) + 2
		u := int(uRaw%10) + 1
		r, err := NewRotor(n, u)
		if err != nil {
			return false
		}
		return CheckContentionFree(r) == nil && CheckUniformCoverage(r) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRotorEpochMinimal(t *testing.T) {
	// U divides N: epoch N/U... no — epoch is N/gcd(N,U).
	r, _ := NewRotor(128, 8)
	if r.SlotsPerEpoch() != 16 {
		t.Errorf("epoch = %d, want 16", r.SlotsPerEpoch())
	}
	if r.ConnectionsPerEpoch() != 1 {
		t.Errorf("k = %d, want 1", r.ConnectionsPerEpoch())
	}
}

func TestDegraded(t *testing.T) {
	base, _ := NewGrouped(16, 4, 1)
	d, err := NewDegraded(base, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Failed(3) || d.Failed(2) {
		t.Error("failure flags wrong")
	}
	// Slots to/from node 3 are -1; the rest intact and contention-free.
	wasted, used := 0, 0
	for s := 0; s < d.SlotsPerEpoch(); s++ {
		for u := 0; u < d.Uplinks(); u++ {
			for n := 0; n < 16; n++ {
				dst := d.Dst(n, u, s)
				if dst == 3 {
					t.Fatalf("schedule still targets failed node")
				}
				if dst < 0 {
					wasted++
				} else {
					used++
				}
			}
		}
	}
	if err := CheckContentionFree(d); err != nil {
		t.Error(err)
	}
	// §4.5: failure of 1 of N nodes costs each survivor 1/N of bandwidth.
	// Of the 16 nodes x 4 uplinks x 4 slots = 256 slot-connections per
	// epoch, node 3's own 16 are silenced and the 15 inbound from others
	// are wasted.
	if wasted != 16+15 {
		t.Errorf("wasted = %d, want 31", wasted)
	}
}

func TestDegradedRejectsBadNode(t *testing.T) {
	base, _ := NewGrouped(16, 4, 1)
	if _, err := NewDegraded(base, []int{16}); err == nil {
		t.Error("out-of-range failed node accepted")
	}
}

func TestCompact(t *testing.T) {
	base, _ := NewGrouped(16, 4, 1)
	r, live, err := Compact(base, []int{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes() != 14 || len(live) != 14 {
		t.Fatalf("compact nodes = %d, want 14", r.Nodes())
	}
	for _, n := range live {
		if n == 0 || n == 5 {
			t.Error("failed node in live set")
		}
	}
	if err := CheckContentionFree(r); err != nil {
		t.Error(err)
	}
	if err := CheckUniformCoverage(r); err != nil {
		t.Error(err)
	}
}

func TestCompactAllFailed(t *testing.T) {
	base, _ := NewGrouped(4, 2, 1)
	if _, _, err := Compact(base, []int{0, 1, 2}); err == nil {
		t.Error("compacting to <2 nodes should fail")
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewGrouped(1, 1, 1); err == nil {
		t.Error("1-node schedule accepted")
	}
	if _, err := NewGrouped(10, 4, 1); err == nil {
		t.Error("non-divisible groups accepted")
	}
	if _, err := NewGrouped(4, 2, 0); err == nil {
		t.Error("zero multiplicity accepted")
	}
	if _, err := NewRotor(1, 1); err == nil {
		t.Error("1-node rotor accepted")
	}
	if _, err := NewRotor(4, 0); err == nil {
		t.Error("0-uplink rotor accepted")
	}
}

func TestGroupedMultiplicityStagger(t *testing.T) {
	// With 2 planes the two connections of a pair land half an epoch
	// apart, halving the worst-case wait.
	g, _ := NewGrouped(16, 8, 2)
	// Pair (0, 1): plane 0 connects at slot 1 (0+s ≡ 1 mod 8), plane 1 at
	// slot (1 - 4) mod 8 = 5.
	var slots []int
	for s := 0; s < 8; s++ {
		for u := 0; u < g.Uplinks(); u++ {
			if g.Dst(0, u, s) == 1 {
				slots = append(slots, s)
			}
		}
	}
	if len(slots) != 2 {
		t.Fatalf("pair connected %d times, want 2", len(slots))
	}
	gap := slots[1] - slots[0]
	if gap != 4 {
		t.Errorf("plane connections %v, want 4 slots apart", slots)
	}
}

func TestSlotForPanics(t *testing.T) {
	g, _ := NewGrouped(8, 4, 1)
	defer func() {
		if recover() == nil {
			t.Error("SlotFor out of range did not panic")
		}
	}()
	g.SlotFor(0, 99)
}

func TestCheckPanics(t *testing.T) {
	g, _ := NewGrouped(8, 4, 1)
	for name, f := range map[string]func(){
		"node":     func() { g.Dst(-1, 0, 0) },
		"uplink":   func() { g.Dst(0, 99, 0) },
		"slot":     func() { g.Dst(0, 0, 99) },
		"rotorIdx": func() { r, _ := NewRotor(8, 2); r.Dst(8, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCompactEpochTrade(t *testing.T) {
	// Compacting 64 nodes with 8 uplinks to 63 would give a 63-slot
	// rotor epoch; the trade drops to 7 uplinks and a 9-slot epoch.
	base, _ := NewGrouped(64, 8, 1)
	r, live, err := Compact(base, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 63 {
		t.Fatalf("live = %d", len(live))
	}
	if r.Uplinks() != 7 || r.SlotsPerEpoch() != 9 {
		t.Errorf("compact picked %d uplinks / %d-slot epoch, want 7/9",
			r.Uplinks(), r.SlotsPerEpoch())
	}
	// Compacting to 60 keeps all 8 uplinks (E=15 is acceptable).
	r2, _, err := Compact(base, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Uplinks() != 8 {
		t.Errorf("compact dropped uplinks unnecessarily: %d", r2.Uplinks())
	}
	if err := CheckContentionFree(r); err != nil {
		t.Error(err)
	}
	if err := CheckUniformCoverage(r2); err != nil {
		t.Error(err)
	}
}

func TestDegradedMultipleFailures(t *testing.T) {
	// Several simultaneous failures on both schedule families: every slot
	// touching any failed node is silenced, the rest stay contention-free.
	bases := map[string]Schedule{}
	if g, err := NewGrouped(16, 4, 1); err == nil {
		bases["grouped"] = g
	} else {
		t.Fatal(err)
	}
	if r, err := NewRotor(16, 3); err == nil {
		bases["rotor"] = r
	} else {
		t.Fatal(err)
	}
	failed := []int{1, 7, 12}
	for name, base := range bases {
		d, err := NewDegraded(base, failed)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, f := range failed {
			if !d.Failed(f) {
				t.Errorf("%s: node %d not flagged failed", name, f)
			}
		}
		wasted := 0
		for s := 0; s < d.SlotsPerEpoch(); s++ {
			for u := 0; u < d.Uplinks(); u++ {
				for n := 0; n < 16; n++ {
					dst := d.Dst(n, u, s)
					for _, f := range failed {
						if dst == f {
							t.Fatalf("%s: slot (%d,%d,%d) still targets failed node %d", name, n, u, s, f)
						}
					}
					if dst < 0 {
						wasted++
					}
				}
			}
		}
		// A wasted slot has a failed source or a failed destination. The 3
		// failed sources lose all uplinks × slots; each of the 13 surviving
		// sources additionally wastes its k connections to each of the 3
		// failed destinations.
		k := base.ConnectionsPerEpoch()
		wantWasted := 3*base.Uplinks()*base.SlotsPerEpoch() + 13*3*k
		if wasted != wantWasted {
			t.Errorf("%s: wasted = %d, want %d", name, wasted, wantWasted)
		}
		if err := CheckContentionFree(d); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCompactMultipleFailures(t *testing.T) {
	// Compacting around several simultaneous failures, from both a grouped
	// and a rotor base: the live mapping skips every failed node and the
	// rebuilt rotor keeps the uniform-coverage and contention-free
	// invariants.
	type tc struct {
		name   string
		base   func() (Schedule, error)
		failed []int
	}
	cases := []tc{
		{"grouped-3fail", func() (Schedule, error) { return NewGrouped(16, 4, 1) }, []int{0, 5, 9}},
		{"grouped-adjacent", func() (Schedule, error) { return NewGrouped(16, 4, 1) }, []int{6, 7, 8}},
		{"rotor-3fail", func() (Schedule, error) { return NewRotor(16, 3) }, []int{2, 3, 11}},
		{"rotor-half", func() (Schedule, error) { return NewRotor(8, 2) }, []int{0, 2, 4, 6}},
		{"grouped-paper", func() (Schedule, error) { return NewGrouped(64, 8, 1) }, []int{1, 17, 33, 49, 63}},
	}
	for _, c := range cases {
		base, err := c.base()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		r, live, err := Compact(base, c.failed)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		wantLive := base.Nodes() - len(c.failed)
		if r.Nodes() != wantLive || len(live) != wantLive {
			t.Fatalf("%s: compact nodes = %d, want %d", c.name, r.Nodes(), wantLive)
		}
		seen := map[int]bool{}
		for i, n := range live {
			if i > 0 && live[i-1] >= n {
				t.Errorf("%s: live mapping not strictly increasing: %v", c.name, live)
			}
			seen[n] = true
			for _, f := range c.failed {
				if n == f {
					t.Errorf("%s: failed node %d in live set", c.name, f)
				}
			}
		}
		if len(seen) != wantLive {
			t.Errorf("%s: duplicate nodes in live mapping %v", c.name, live)
		}
		if r.Uplinks() > base.Uplinks() {
			t.Errorf("%s: compaction invented uplinks (%d > %d)", c.name, r.Uplinks(), base.Uplinks())
		}
		if err := CheckContentionFree(r); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
		if err := CheckUniformCoverage(r); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestCompactDeterministic(t *testing.T) {
	// Two independent compactions over the same survivor set must agree
	// exactly — the wire fabric relies on "agreement on when + the same
	// deterministic computation = agreement on what".
	base, _ := NewRotor(12, 3)
	failed := []int{4, 10}
	a, liveA, err := Compact(base, failed)
	if err != nil {
		t.Fatal(err)
	}
	b, liveB, err := Compact(base, []int{10, 4}) // order must not matter
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes() != b.Nodes() || a.Uplinks() != b.Uplinks() || a.SlotsPerEpoch() != b.SlotsPerEpoch() {
		t.Fatalf("compactions disagree on shape: %d/%d/%d vs %d/%d/%d",
			a.Nodes(), a.Uplinks(), a.SlotsPerEpoch(), b.Nodes(), b.Uplinks(), b.SlotsPerEpoch())
	}
	for i := range liveA {
		if liveA[i] != liveB[i] {
			t.Fatalf("live mappings disagree: %v vs %v", liveA, liveB)
		}
	}
	for s := 0; s < a.SlotsPerEpoch(); s++ {
		for u := 0; u < a.Uplinks(); u++ {
			for n := 0; n < a.Nodes(); n++ {
				if a.Dst(n, u, s) != b.Dst(n, u, s) {
					t.Fatalf("schedules disagree at (%d,%d,%d)", n, u, s)
				}
			}
		}
	}
}

// TestCompactMatchesGroupedAtFullMembership pins the identity the wire
// fabric's membership machinery relies on: compacting a one-uplink
// grouped schedule over zero failures yields a rotor with the identical
// destination sequence, so "always schedule via Compact over the
// inactive set" changes nothing for a full fabric.
func TestCompactMatchesGroupedAtFullMembership(t *testing.T) {
	for _, n := range []int{2, 4, 6, 16} {
		g, err := NewGrouped(n, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		r, live, err := Compact(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(live) != n || r.SlotsPerEpoch() != g.SlotsPerEpoch() {
			t.Fatalf("n=%d: shape changed: %d live, %d slots", n, len(live), r.SlotsPerEpoch())
		}
		for node := 0; node < n; node++ {
			for s := 0; s < n; s++ {
				if r.Dst(node, 0, s) != g.Dst(node, 0, s) {
					t.Fatalf("n=%d: Dst(%d,0,%d): rotor %d vs grouped %d",
						n, node, s, r.Dst(node, 0, s), g.Dst(node, 0, s))
				}
			}
		}
	}
}

func TestCompactRejectsBadNodes(t *testing.T) {
	base, _ := NewGrouped(8, 4, 1)
	if _, _, err := Compact(base, []int{-1}); err == nil {
		t.Error("negative failed node accepted")
	}
}

func TestDegradedPreservesMetadata(t *testing.T) {
	base, _ := NewGrouped(8, 4, 1)
	d, _ := NewDegraded(base, []int{1})
	if d.Nodes() != 8 || d.Uplinks() != base.Uplinks() ||
		d.SlotsPerEpoch() != base.SlotsPerEpoch() ||
		d.ConnectionsPerEpoch() != base.ConnectionsPerEpoch() {
		t.Error("degraded wrapper changed schedule metadata")
	}
	if d.RxPort(0, 1) != base.RxPort(0, 1) {
		t.Error("degraded wrapper changed rx ports")
	}
}
