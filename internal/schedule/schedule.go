// Package schedule implements Sirius' "scheduler-less" static schedule
// (§4.2): a pre-determined cyclic connection pattern that, combined with
// Valiant load-balanced routing, serves any traffic pattern without
// collecting demands or computing assignments.
//
// Two constructions are provided:
//
//   - Grouped: the paper's physical construction. Nodes are partitioned
//     into groups of G (the grating port count); uplink u of every node is
//     wired to the grating feeding destination group u and cycles through
//     that group's G nodes wavelength-by-wavelength, one per timeslot. The
//     epoch is G timeslots and every ordered node pair is connected exactly
//     once per epoch per plane.
//
//   - Rotor: a generalized construction for arbitrary uplink counts
//     (including fractional provisioning like the paper's 1.5×): uplink u
//     in slot s connects node i to node (i + uE + s) mod N, with the epoch
//     E chosen so that U·E is a multiple of N.
//
// Both are contention-free: within any timeslot and any uplink plane, the
// source-to-destination map is a permutation, so no receiver port sees two
// simultaneous transmitters — the property that lets the optical core have
// no buffers at all.
package schedule

import (
	"fmt"

	"sirius/internal/optics"
)

// Schedule is a static, cyclic transmission schedule.
type Schedule interface {
	// Nodes returns the number of nodes.
	Nodes() int
	// Uplinks returns the number of transceivers per node.
	Uplinks() int
	// SlotsPerEpoch returns the epoch length in timeslots.
	SlotsPerEpoch() int
	// ConnectionsPerEpoch returns how many times each ordered node pair is
	// connected per epoch (the pair bandwidth in slots/epoch). Includes
	// self-connections.
	ConnectionsPerEpoch() int
	// Dst returns the destination that uplink u of node i reaches in slot
	// s of the epoch, or -1 when the slot is unusable (failed node).
	Dst(node, uplink, slot int) int
	// RxPort returns the receiver-side port on which the destination
	// receives a transmission from uplink u of node src. Nodes have as
	// many receive ports as uplinks; the contention-freedom invariant is
	// that no (destination, rx port) pair hears two transmitters in one
	// slot.
	RxPort(src, uplink int) int
	// SlotFor returns an (uplink, slot) of the epoch in which src is
	// connected directly to dst, or (-1, -1) when the schedule never
	// connects the pair (e.g. a failed node in a Degraded schedule).
	// When a pair is connected more than once per epoch any one
	// occurrence may be returned.
	SlotFor(src, dst int) (uplink, slot int)
}

// ScanSlotFor is the generic SlotFor fallback: a brute-force scan over
// the epoch's (uplink, slot) grid. Implementations with closed forms
// (Grouped, Rotor) avoid it; adapters over opaque schedules use it, and
// tests cross-check the closed forms against it.
func ScanSlotFor(s Schedule, src, dst int) (uplink, slot int) {
	e, u := s.SlotsPerEpoch(), s.Uplinks()
	for slot = 0; slot < e; slot++ {
		for uplink = 0; uplink < u; uplink++ {
			if s.Dst(src, uplink, slot) == dst {
				return uplink, slot
			}
		}
	}
	return -1, -1
}

// Grouped is the paper's grating-group schedule.
type Grouped struct {
	nodes        int
	gratingPorts int
	multiplicity int
}

// NewGrouped builds the paper's schedule for nodes partitioned into groups
// of gratingPorts, with multiplicity planes of uplinks.
func NewGrouped(nodes, gratingPorts, multiplicity int) (*Grouped, error) {
	switch {
	case nodes < 2:
		return nil, fmt.Errorf("schedule: need >= 2 nodes")
	case gratingPorts < 1 || nodes%gratingPorts != 0:
		return nil, fmt.Errorf("schedule: nodes (%d) must be a multiple of grating ports (%d)", nodes, gratingPorts)
	case multiplicity < 1:
		return nil, fmt.Errorf("schedule: multiplicity must be >= 1")
	}
	return &Grouped{nodes: nodes, gratingPorts: gratingPorts, multiplicity: multiplicity}, nil
}

// Nodes implements Schedule.
func (g *Grouped) Nodes() int { return g.nodes }

// Uplinks implements Schedule.
func (g *Grouped) Uplinks() int { return g.nodes / g.gratingPorts * g.multiplicity }

// SlotsPerEpoch implements Schedule.
func (g *Grouped) SlotsPerEpoch() int { return g.gratingPorts }

// ConnectionsPerEpoch implements Schedule.
func (g *Grouped) ConnectionsPerEpoch() int { return g.multiplicity }

// groups returns the number of node groups.
func (g *Grouped) groups() int { return g.nodes / g.gratingPorts }

// Dst implements Schedule. Uplink u = destGroup + plane*groups; planes are
// staggered across the epoch so a pair's multiple connections spread out.
func (g *Grouped) Dst(node, uplink, slot int) int {
	g.check(node, uplink, slot)
	destGroup := uplink % g.groups()
	plane := uplink / g.groups()
	stagger := g.gratingPorts * plane / g.multiplicity
	port := (node + slot + stagger) % g.gratingPorts
	return destGroup*g.gratingPorts + port
}

// Wavelength returns the laser wavelength uplink u of node i must use in
// slot s, consistent with cyclic AWGR routing: the grating input port is
// (node mod G), the output port is (dst mod G), and the wavelength is
// their cyclic difference.
//
// A key property (tested) falls out: the wavelength depends only on the
// slot and the plane, not on the node or destination group — so all
// transceivers of a node (within a plane) use the same wavelength at any
// instant, enabling the §4.5 laser sharing.
func (g *Grouped) Wavelength(node, uplink, slot int) optics.Wavelength {
	g.check(node, uplink, slot)
	plane := uplink / g.groups()
	stagger := g.gratingPorts * plane / g.multiplicity
	return optics.Wavelength((slot + stagger) % g.gratingPorts)
}

// RxPort implements Schedule: a destination in group g hears source group
// a, plane p on receive port a + p*groups — one port per grating it is an
// output of.
func (g *Grouped) RxPort(src, uplink int) int {
	g.check(src, 0, 0)
	plane := uplink / g.groups()
	return src/g.gratingPorts + plane*g.groups()
}

// SlotFor returns the slot of the epoch in which uplink u of src reaches
// dst, and which uplink that is (first plane).
func (g *Grouped) SlotFor(src, dst int) (uplink, slot int) {
	if src < 0 || src >= g.nodes || dst < 0 || dst >= g.nodes {
		panic("schedule: node out of range")
	}
	uplink = dst / g.gratingPorts
	slot = ((dst-src)%g.gratingPorts + g.gratingPorts) % g.gratingPorts
	return uplink, slot
}

func (g *Grouped) check(node, uplink, slot int) {
	if node < 0 || node >= g.nodes {
		panic(fmt.Sprintf("schedule: node %d out of range", node))
	}
	if uplink < 0 || uplink >= g.Uplinks() {
		panic(fmt.Sprintf("schedule: uplink %d out of range", uplink))
	}
	if slot < 0 || slot >= g.gratingPorts {
		panic(fmt.Sprintf("schedule: slot %d out of range", slot))
	}
}

// Rotor is the generalized schedule: uplink u in slot s connects node i to
// (i + uE + s) mod N. It supports any uplink count, at the cost of an
// abstract (relative-window) grating wiring.
type Rotor struct {
	nodes   int
	uplinks int
	slots   int // E
}

// NewRotor builds a rotor schedule, choosing the smallest epoch E >= 1
// with U·E a multiple of N (so pair bandwidth is uniform).
func NewRotor(nodes, uplinks int) (*Rotor, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("schedule: need >= 2 nodes")
	}
	if uplinks < 1 {
		return nil, fmt.Errorf("schedule: need >= 1 uplink")
	}
	e := nodes / gcd(nodes, uplinks)
	return &Rotor{nodes: nodes, uplinks: uplinks, slots: e}, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Nodes implements Schedule.
func (r *Rotor) Nodes() int { return r.nodes }

// Uplinks implements Schedule.
func (r *Rotor) Uplinks() int { return r.uplinks }

// SlotsPerEpoch implements Schedule.
func (r *Rotor) SlotsPerEpoch() int { return r.slots }

// ConnectionsPerEpoch implements Schedule.
func (r *Rotor) ConnectionsPerEpoch() int { return r.uplinks * r.slots / r.nodes }

// Dst implements Schedule.
func (r *Rotor) Dst(node, uplink, slot int) int {
	if node < 0 || node >= r.nodes || uplink < 0 || uplink >= r.uplinks || slot < 0 || slot >= r.slots {
		panic("schedule: index out of range")
	}
	return (node + uplink*r.slots + slot) % r.nodes
}

// RxPort implements Schedule: with the rotor construction, for a fixed
// uplink index the source-to-destination map is a global permutation, so
// the uplink index itself identifies the receive port.
func (r *Rotor) RxPort(src, uplink int) int { return uplink }

// SlotFor implements Schedule analytically: src reaches dst on uplink u
// in slot s iff s ≡ dst - src - uE (mod N) with 0 <= s < E, so each
// uplink is probed for an in-epoch residue.
func (r *Rotor) SlotFor(src, dst int) (uplink, slot int) {
	if src < 0 || src >= r.nodes || dst < 0 || dst >= r.nodes {
		panic("schedule: node out of range")
	}
	for u := 0; u < r.uplinks; u++ {
		s := ((dst-src-u*r.slots)%r.nodes + r.nodes) % r.nodes
		if s < r.slots {
			return u, s
		}
	}
	return -1, -1
}

// Degraded wraps a schedule after node failures: slots whose destination
// has failed are unusable (-1), so each surviving node loses a
// proportional 1/N of bandwidth per failed node (§4.5). The failed node's
// own uplinks are also silenced.
type Degraded struct {
	Schedule
	failed []bool
}

// NewDegraded marks the given nodes failed.
func NewDegraded(s Schedule, failedNodes []int) (*Degraded, error) {
	f := make([]bool, s.Nodes())
	for _, n := range failedNodes {
		if n < 0 || n >= s.Nodes() {
			return nil, fmt.Errorf("schedule: failed node %d out of range", n)
		}
		f[n] = true
	}
	return &Degraded{Schedule: s, failed: f}, nil
}

// Failed reports whether node n is marked failed.
func (d *Degraded) Failed(n int) bool { return d.failed[n] }

// Dst implements Schedule, returning -1 for slots touching failed nodes.
func (d *Degraded) Dst(node, uplink, slot int) int {
	if d.failed[node] {
		return -1
	}
	dst := d.Schedule.Dst(node, uplink, slot)
	if dst >= 0 && d.failed[dst] {
		return -1
	}
	return dst
}

// SlotFor implements Schedule: pairs touching a failed node are never
// connected; otherwise the wrapped schedule's answer stands (failures
// only blank slots, they never move connections).
func (d *Degraded) SlotFor(src, dst int) (uplink, slot int) {
	if d.failed[src] || d.failed[dst] {
		return -1, -1
	}
	return d.Schedule.SlotFor(src, dst)
}

// Compact rebuilds a rotor schedule over only the surviving nodes,
// regaining the bandwidth lost to failures at the cost of a consistent
// datacenter-wide schedule update (§4.5). It returns the new schedule and
// the mapping from compact index to original node id.
func Compact(s Schedule, failedNodes []int) (*Rotor, []int, error) {
	failed := make([]bool, s.Nodes())
	for _, n := range failedNodes {
		if n < 0 || n >= s.Nodes() {
			return nil, nil, fmt.Errorf("schedule: failed node %d out of range", n)
		}
		failed[n] = true
	}
	var live []int
	for n := 0; n < s.Nodes(); n++ {
		if !failed[n] {
			live = append(live, n)
		}
	}
	if len(live) < 2 {
		return nil, nil, fmt.Errorf("schedule: fewer than 2 nodes survive")
	}
	// A rotor over a node count coprime with the uplink count would have
	// an N-slot epoch, exploding control latency and in-flight windows.
	// Keep every uplink when the epoch stays reasonable; otherwise trade
	// at most two uplinks for the shortest epoch available — capacity
	// first, responsiveness second.
	n := len(live)
	maxU := s.Uplinks()
	epochCap := 4 * n / maxU
	if epochCap < 2 {
		epochCap = 2
	}
	bestU, bestE := maxU, n/gcd(n, maxU)
	if bestE > epochCap {
		for u := maxU; u >= 1 && u >= maxU-2; u-- {
			e := n / gcd(n, u)
			if e < bestE || (e == bestE && u > bestU) {
				bestU, bestE = u, e
			}
		}
	}
	r, err := NewRotor(n, bestU)
	if err != nil {
		return nil, nil, err
	}
	return r, live, nil
}

// CheckContentionFree verifies the defining safety property: in any slot,
// no (destination, receive port) pair hears more than one transmitter —
// the optical core has no buffers, so simultaneous arrivals on one port
// would collide. It returns an error describing the first violation.
func CheckContentionFree(s Schedule) error {
	n, u, e := s.Nodes(), s.Uplinks(), s.SlotsPerEpoch()
	seen := make([]int, n*u)
	for slot := 0; slot < e; slot++ {
		for i := range seen {
			seen[i] = -1
		}
		for up := 0; up < u; up++ {
			for src := 0; src < n; src++ {
				dst := s.Dst(src, up, slot)
				if dst < 0 {
					continue
				}
				if dst >= n {
					return fmt.Errorf("slot %d uplink %d: node %d targets out-of-range %d", slot, up, src, dst)
				}
				port := s.RxPort(src, up)
				if port < 0 || port >= u {
					return fmt.Errorf("slot %d uplink %d: rx port %d out of range", slot, up, port)
				}
				if prev := seen[dst*u+port]; prev >= 0 {
					return fmt.Errorf("slot %d: nodes %d and %d both target %d rx port %d", slot, prev, src, dst, port)
				}
				seen[dst*u+port] = src
			}
		}
	}
	return nil
}

// CheckUniformCoverage verifies the load-balancing property: every ordered
// pair (including self-pairs) is connected exactly ConnectionsPerEpoch
// times per epoch.
func CheckUniformCoverage(s Schedule) error {
	n, u, e, k := s.Nodes(), s.Uplinks(), s.SlotsPerEpoch(), s.ConnectionsPerEpoch()
	count := make([]int, n*n)
	for slot := 0; slot < e; slot++ {
		for up := 0; up < u; up++ {
			for src := 0; src < n; src++ {
				dst := s.Dst(src, up, slot)
				if dst >= 0 {
					count[src*n+dst]++
				}
			}
		}
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if got := count[src*n+dst]; got != k {
				return fmt.Errorf("pair (%d,%d) connected %d times per epoch, want %d", src, dst, got, k)
			}
		}
	}
	return nil
}
